#!/bin/sh
# The full local gate: docs build warning-free, everything compiles, the
# whole test suite passes, the differential fuzzer finds nothing, and the
# bench harness emits a valid results document.  Run from anywhere inside
# the repository.
set -eu
cd "$(dirname "$0")/.."

dune build @doc
dune build
dune runtest

# Differential fuzz smoke: 500 seed-pinned cases through every oracle.
# On divergence mvfuzz exits 1 after printing (and, with MVFUZZ_CORPUS
# set, saving) the shrunk reproducer.
dune exec bin/mvfuzz.exe -- --iters 500 --seed 1 --quiet \
  ${MVFUZZ_CORPUS:+--corpus "$MVFUZZ_CORPUS"}

# Smoke the machine-readable bench export: one fast experiment, then
# check the document parses and carries the expected schema/rows.
bench_json=$(mktemp /tmp/mv-bench-XXXXXX.json)
trap 'rm -f "$bench_json"' EXIT
dune exec bench/main.exe -- --fast --only fig1 --no-bechamel --json "$bench_json" > /dev/null
if command -v jq > /dev/null 2>&1; then
  jq -e '.schema == "mv-bench-rows/1" and (.experiments.fig1 | length > 0)' \
    "$bench_json" > /dev/null || { echo "bench JSON invalid: $bench_json"; exit 1; }
elif command -v python3 > /dev/null 2>&1; then
  python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); assert d["schema"]=="mv-bench-rows/1" and d["experiments"]["fig1"], "bench JSON invalid"' \
    "$bench_json"
else
  echo "note: neither jq nor python3 found; skipping bench JSON validation"
fi
echo "check.sh: all gates passed"
