#!/bin/sh
# The full local gate: docs build warning-free, everything compiles, the
# whole test suite passes, the differential fuzzer finds nothing, and the
# bench harness emits a valid results document.  Run from anywhere inside
# the repository.
set -eu
cd "$(dirname "$0")/.."

dune build @doc
dune build
dune runtest

# Differential fuzz smoke: 500 seed-pinned cases through every oracle.
# On divergence mvfuzz exits 1 after printing (and, with MVFUZZ_CORPUS
# set, saving) the shrunk reproducer.  A lazy-eager-equiv divergence
# additionally parks an mv-heat/1 dump of the lazy variant cache in
# MV_SMP_ARTIFACT_DIR (uploaded by CI with the reproducers), so the
# materialization/eviction state behind the diverging cache can be
# inspected with `mvtrace heat`'s JSON offline.
fuzz_status=0
fuzz_log=$(mktemp /tmp/mv-fuzz-XXXXXX.log)
dune exec bin/mvfuzz.exe -- --iters 500 --seed 1 --quiet \
  ${MVFUZZ_CORPUS:+--corpus "$MVFUZZ_CORPUS"} > "$fuzz_log" 2>&1 \
  || fuzz_status=$?
cat "$fuzz_log"
if [ "$fuzz_status" -ne 0 ]; then
  if [ -n "${MV_SMP_ARTIFACT_DIR:-}" ] \
      && grep -q "lazy-eager-equiv" "$fuzz_log"; then
    mkdir -p "$MV_SMP_ARTIFACT_DIR"
    lazy_heat_mvc=$(mktemp /tmp/mv-lazy-heat-XXXXXX.mvc)
    cat > "$lazy_heat_mvc" <<'EOF'
multiverse int config_smp;
int lock_word;
multiverse void spin_lock() {
  if (config_smp) { lock_word = lock_word + 1; }
}
void bench_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { spin_lock(); }
}
EOF
    dune exec bin/mvtrace.exe -- heat "$lazy_heat_mvc" --lazy \
      --set config_smp=1 --commit --run bench_loop --arg 200 \
      --json "$MV_SMP_ARTIFACT_DIR"/lazy-cache.heat.json > /dev/null 2>&1 \
      || echo "note: could not produce the lazy mv-heat/1 dump"
    rm -f "$lazy_heat_mvc"
  fi
  rm -f "$fuzz_log"
  exit "$fuzz_status"
fi
rm -f "$fuzz_log"

# SMP smoke: the multi-hart oracle must be clean on the real pipeline,
# and a severed IPI channel (drop-ack) must be caught — if the chaos run
# exits 0 the rendezvous/coherence oracle has lost its teeth.
dune exec bin/mvfuzz.exe -- --iters 25 --seed 1 --quiet \
  --oracle smp-schedule-equiv
if dune exec bin/mvfuzz.exe -- --iters 5 --seed 1 --quiet --small \
    --chaos drop-ack --oracle smp-schedule-equiv --shrink-budget 0 > /dev/null 2>&1; then
  echo "mvfuzz: drop-ack chaos was NOT detected by smp-schedule-equiv"; exit 1
fi

# Lazy-cache smoke (must-fail): an eviction that forgets to invalidate
# the structural-hash dedup table must trip the lazy-vs-eager oracle —
# a later hash hit links a freed-and-recycled block holding some other
# variant's body.  If the chaos run exits 0 the lazy oracle has lost
# its teeth.
if dune exec bin/mvfuzz.exe -- --iters 5 --seed 1 --quiet --small \
    --chaos stale-cache --oracle lazy-eager-equiv --shrink-budget 0 > /dev/null 2>&1; then
  echo "mvfuzz: stale-cache chaos was NOT detected by lazy-eager-equiv"; exit 1
fi

# OSR smoke (must-fail): a frame map with one live-entry location bumped
# must trip the on-stack-replacement oracle — the transfer rebuilds the
# parked frame from the wrong register or spill slot — and the diverged
# case must leave an mv-flight/1 dump that `mvtrace postmortem` parses.
# If the chaos run exits 0 the OSR oracle has lost its teeth.
osr_flight_dir=$(mktemp -d /tmp/mv-osr-flight-XXXXXX)
if MV_SMP_ARTIFACT_DIR="$osr_flight_dir" dune exec bin/mvfuzz.exe -- \
    --iters 3 --seed 1 --quiet --small --chaos corrupt-framemap \
    --oracle osr-state-equiv --shrink-budget 0 > /dev/null 2>&1; then
  echo "mvfuzz: corrupt-framemap chaos was NOT detected by osr-state-equiv"; exit 1
fi
osr_dump=$(ls "$osr_flight_dir"/*.flight.json 2> /dev/null | head -n 1) \
  && [ -n "$osr_dump" ] \
  || { echo "osr smoke: divergence left no .flight.json in $osr_flight_dir"; exit 1; }
dune exec bin/mvtrace.exe -- postmortem "$osr_dump" > /dev/null \
  || { echo "osr smoke: mvtrace postmortem cannot parse $osr_dump"; exit 1; }
# In CI the gate runs with MV_SMP_ARTIFACT_DIR set; park a copy of the
# dump there so a failing run uploads the OSR postmortem with the rest.
if [ -n "${MV_SMP_ARTIFACT_DIR:-}" ]; then
  mkdir -p "$MV_SMP_ARTIFACT_DIR"
  cp "$osr_dump" "$MV_SMP_ARTIFACT_DIR"/osr-chaos.flight.json
fi
rm -rf "$osr_flight_dir"

# Smoke the machine-readable bench export: one fast experiment, then
# check the document parses and carries the expected schema/rows.
bench_json=$(mktemp /tmp/mv-bench-XXXXXX.json)
trap 'rm -f "$bench_json"' EXIT
dune exec bench/main.exe -- --fast --only fig1 --no-bechamel --json "$bench_json" > /dev/null
if command -v jq > /dev/null 2>&1; then
  jq -e '.schema == "mv-bench-rows/1" and (.experiments.fig1 | length > 0)' \
    "$bench_json" > /dev/null || { echo "bench JSON invalid: $bench_json"; exit 1; }
elif command -v python3 > /dev/null 2>&1; then
  python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); assert d["schema"]=="mv-bench-rows/1" and d["experiments"]["fig1"], "bench JSON invalid"' \
    "$bench_json"
else
  echo "note: neither jq nor python3 found; skipping bench JSON validation"
fi

# mvtrace smoke: folded stacks from a tiny committed workload must name a
# variant frame, and the fig1 rows just produced must match the committed
# baseline (the simulator is deterministic, so any drift beyond the gate
# means BENCH_results.json is stale).
smoke_mvc=$(mktemp /tmp/mv-smoke-XXXXXX.mvc)
smoke_folded=$(mktemp /tmp/mv-folded-XXXXXX.txt)
trap 'rm -f "$bench_json" "$smoke_mvc" "$smoke_folded"' EXIT
cat > "$smoke_mvc" <<'EOF'
multiverse int config_smp;
int lock_word;
multiverse void spin_lock() {
  if (config_smp) { lock_word = lock_word + 1; }
}
void bench_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { spin_lock(); }
}
EOF
dune exec bin/mvtrace.exe -- flame "$smoke_mvc" --set config_smp=1 --commit \
  --run bench_loop --arg 200 --interval 7 --out "$smoke_folded" 2> /dev/null
grep -q 'spin_lock.config_smp=1' "$smoke_folded" \
  || { echo "mvtrace flame: no variant frame in folded stacks"; exit 1; }
dune exec bin/mvtrace.exe -- diff --gate 5 BENCH_results.json "$bench_json" > /dev/null \
  || { echo "mvtrace diff: fig1 rows drifted from BENCH_results.json"; exit 1; }

# Heat smoke: the block-heat census on the same workload must attribute
# nonzero heat to the committed variant's text region (if the variant
# region reads 0 the dispatch-path hook or the region census is broken).
smoke_heat=$(mktemp /tmp/mv-heat-XXXXXX.txt)
trap 'rm -f "$bench_json" "$smoke_mvc" "$smoke_folded" "$smoke_heat"' EXIT
dune exec bin/mvtrace.exe -- heat "$smoke_mvc" --set config_smp=1 --commit \
  --run bench_loop --arg 200 > "$smoke_heat" 2> /dev/null
grep -q 'spin_lock.config_smp=1' "$smoke_heat" \
  || { echo "mvtrace heat: variant region missing"; exit 1; }
# Columns: region kind bytes covered cover% hits heat [bar].
awk '$1 == "spin_lock.config_smp=1" && $6 + 0 > 0 { found = 1 } END { exit !found }' \
  "$smoke_heat" \
  || { echo "mvtrace heat: variant region has zero heat"; exit 1; }

# Parallel fuzz smoke: a domain-striped campaign must write the exact
# corpus a single-domain run writes (case seeds are domain-count
# invariant).  Chaos skip-flush guarantees divergences, so both runs
# exit 1 by contract and the compared corpora are non-empty.
corpus_1dom=$(mktemp -d /tmp/mv-corpus1-XXXXXX)
corpus_ndom=$(mktemp -d /tmp/mv-corpus2-XXXXXX)
trap 'rm -f "$bench_json" "$smoke_mvc" "$smoke_folded"; rm -rf "$corpus_1dom" "$corpus_ndom"' EXIT
run_striped_campaign() {
  status=0
  dune exec bin/mvfuzz.exe -- --iters 4 --seed 1 --small --quiet \
    --chaos skip-flush --keep-going --shrink-budget 8 \
    --domains "$1" --corpus "$2" > /dev/null 2>&1 || status=$?
  [ "$status" -eq 1 ] \
    || { echo "mvfuzz --domains $1: expected exit 1 under skip-flush, got $status"; exit 1; }
}
run_striped_campaign 1 "$corpus_1dom"
run_striped_campaign 2 "$corpus_ndom"
diff -r "$corpus_1dom" "$corpus_ndom" > /dev/null \
  || { echo "mvfuzz: 2-domain corpus differs from the single-domain corpus"; exit 1; }

# Flight-recorder smoke (must-fail): a guest that divides by zero must
# make the run exit non-zero AND leave a mv-flight/1 dump that
# `mvtrace postmortem` parses.  If either half breaks, the postmortem
# story is dead even though every green-path test still passes.
trap_mvc=$(mktemp /tmp/mv-trap-XXXXXX.mvc)
flight_dir=$(mktemp -d /tmp/mv-flight-XXXXXX)
trap 'rm -f "$bench_json" "$smoke_mvc" "$smoke_folded" "$trap_mvc"; rm -rf "$corpus_1dom" "$corpus_ndom" "$flight_dir"' EXIT
cat > "$trap_mvc" <<'EOF'
multiverse int config_smp;
int lock_word;
multiverse void spin_lock() {
  if (config_smp) { lock_word = lock_word + 1; }
}
void bench_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    spin_lock();
    lock_word = lock_word / (n - 1 - i);
  }
}
EOF
if MV_SMP_ARTIFACT_DIR="$flight_dir" dune exec bin/mvtrace.exe -- \
    flame "$trap_mvc" --set config_smp=1 --commit --run bench_loop --arg 5 \
    > /dev/null 2>&1; then
  echo "flight smoke: division by zero did NOT fail the run"; exit 1
fi
flight_dump=$(ls "$flight_dir"/*.flight.json 2> /dev/null | head -n 1) \
  && [ -n "$flight_dump" ] \
  || { echo "flight smoke: trap left no .flight.json in $flight_dir"; exit 1; }
dune exec bin/mvtrace.exe -- postmortem "$flight_dump" > /dev/null \
  || { echo "flight smoke: mvtrace postmortem cannot parse $flight_dump"; exit 1; }

echo "check.sh: all gates passed"
