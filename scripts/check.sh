#!/bin/sh
# The full local gate: docs build warning-free, everything compiles, and
# the whole test suite passes.  Run from anywhere inside the repository.
set -eu
cd "$(dirname "$0")/.."

dune build @doc
dune build
dune runtest
