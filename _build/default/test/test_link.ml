(* Linker and image tests: section concatenation (the descriptor-array
   trick of Section 5), symbol resolution, relocation arithmetic, and the
   page-protection model. *)

open Util
module Objfile = Mv_codegen.Objfile
module Linker = Mv_link.Linker
module Image = Mv_link.Image

let build_image sources = (build_units sources).Core.Compiler.p_image

let test_section_layout () =
  let img = build_image [ ("a", "int x; void f() { x = 1; }") ] in
  let text = Option.get (Image.section_range img Objfile.Text) in
  let data = Option.get (Image.section_range img Objfile.Data) in
  check_int "text base" Linker.text_base text.Image.sr_base;
  check_bool "data after text" true (data.Image.sr_base >= text.Image.sr_base + text.Image.sr_size);
  check_int "data page aligned" 0 (data.Image.sr_base mod Image.page_size);
  check_bool "heap after sections" true (img.Image.heap_base >= data.Image.sr_base + data.Image.sr_size);
  check_int "heap page aligned" 0 (img.Image.heap_base mod Image.page_size)

let test_cross_unit_symbols () =
  let img =
    build_image
      [
        ("defs", "int shared = 5; void helper() { shared = shared + 1; }");
        ("uses", "extern int shared; extern void helper(); int get() { helper(); return shared; }");
      ]
  in
  check_bool "shared resolved" true (Image.symbol_opt img "shared" <> None);
  check_bool "helper resolved" true (Image.symbol_opt img "helper" <> None);
  check_bool "get resolved" true (Image.symbol_opt img "get" <> None)

let test_descriptor_sections_concatenate () =
  (* two units each define one switch; the merged multiverse.variables
     section must be a contiguous 2-record array *)
  let img =
    build_image
      [
        ("u1", "multiverse int a; multiverse void f() { if (a) { } }");
        ("u2", "multiverse int b; multiverse void g() { if (b) { } }");
      ]
  in
  let vars = Core.Descriptor.parse_variables img in
  check_int "two variable records" 2 (List.length vars);
  let range = Option.get (Image.section_range img Objfile.Mv_variables) in
  check_int "section is exactly 2 x 32 bytes" 64 range.Image.sr_size;
  let addrs = List.map (fun (v : Core.Descriptor.variable) -> v.vr_addr) vars in
  check_bool "addresses are the symbols" true
    (List.mem (Image.symbol img "a") addrs && List.mem (Image.symbol img "b") addrs)

let test_undefined_symbol_errors () =
  match build_units [ ("u", "extern void missing(); void f() { missing(); }") ] with
  | exception Core.Compiler.Compile_error m ->
      check_bool "mentions the symbol" true
        (let needle = "missing" in
         let lh = String.length m and ln = String.length needle in
         let rec go i = i + ln <= lh && (String.sub m i ln = needle || go (i + 1)) in
         go 0)
  | _ -> Alcotest.fail "expected a link error"

let test_duplicate_symbol_errors () =
  match build_units [ ("u1", "int x;"); ("u2", "int x;") ] with
  | exception Core.Compiler.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected a duplicate-symbol error"

let test_rel32_resolution () =
  (* a cross-unit call must land exactly on the callee *)
  let sources =
    [
      ("callee", "int target() { return 99; }");
      ("caller", "extern int target(); int f() { return target(); }");
    ]
  in
  let s = session_units sources in
  check_int "cross-unit call executes" 99 (run s "f" []);
  let img = s.program.Core.Compiler.p_image in
  (* find the call instruction inside f and check its resolved target *)
  let f_addr = Image.symbol img "f" in
  let f_size = Image.symbol_size img "f" in
  let listing = Mv_isa.Decode.decode_range img.Image.mem ~off:f_addr ~len:f_size in
  let call_target =
    List.find_map
      (fun (pos, i) ->
        match i with Mv_isa.Insn.Call rel -> Some (pos + 5 + rel) | _ -> None)
      listing
  in
  check_int "rel32 resolves to the callee" (Image.symbol img "target")
    (Option.get call_target)

let test_abs64_fnptr_init () =
  let s = session "int ten() { return 10; } fnptr op = &ten;" in
  let img = s.program.Core.Compiler.p_image in
  check_int "fnptr cell holds the function address" (Image.symbol img "ten")
    (Image.read img (Image.symbol img "op") 8)

let test_global_initializers () =
  let s = session "int a = 42; int b = -7; int c; uint8 d = 200;" in
  check_int "a" 42 (get_global s "a");
  check_int "b" (-7) (get_global s "b");
  check_int "c zero" 0 (get_global s "c");
  let img = s.program.Core.Compiler.p_image in
  check_int "d" 200 (Image.read img (Image.symbol img "d") 1)

let test_text_protection () =
  let img = build_image [ ("u", "void f() { }") ] in
  let f = Image.symbol img "f" in
  (* executing is allowed, writing is not *)
  Image.check_exec img f 1;
  (match Image.write img f 0x90 1 with
  | exception Image.Segfault _ -> ()
  | () -> Alcotest.fail "text must not be writable");
  (* after mprotect(rwx) the write goes through; restore rejects again *)
  Image.mprotect img ~addr:f ~len:1 Image.prot_rwx;
  Image.write img f 0x90 1;
  Image.mprotect img ~addr:f ~len:1 Image.prot_rx;
  match Image.write img f 0x90 1 with
  | exception Image.Segfault _ -> ()
  | () -> Alcotest.fail "protection must be restorable"

let test_data_not_executable () =
  let img = build_image [ ("u", "int x; void f() { x = 1; }") ] in
  let x = Image.symbol img "x" in
  match Image.check_exec img x 1 with
  | exception Image.Segfault _ -> ()
  | () -> Alcotest.fail "data must not be executable"

let test_out_of_bounds_faults () =
  let img = build_image [ ("u", "void f() { }") ] in
  (match Image.read img (-8) 8 with
  | exception Image.Segfault _ -> ()
  | _ -> Alcotest.fail "negative address must fault");
  match Image.read img (Image.size img) 8 with
  | exception Image.Segfault _ -> ()
  | _ -> Alcotest.fail "past-the-end read must fault"

let test_symbol_at_reverse_lookup () =
  let img = build_image [ ("u", "void first() { } void second() { __cli(); }") ] in
  let second = Image.symbol img "second" in
  check_bool "start of function" true (Image.symbol_at img second = Some "second");
  check_bool "inside function" true (Image.symbol_at img (second + 1) = Some "second")

let test_image_too_small () =
  match Core.Compiler.build ~mem_size:8192 [ ("u", "int big[100000];") ] with
  | exception Core.Compiler.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected an image-size error"

let suite =
  [
    tc "section layout" test_section_layout;
    tc "cross-unit symbols" test_cross_unit_symbols;
    tc "descriptor sections concatenate (Section 5)" test_descriptor_sections_concatenate;
    tc "undefined symbols error" test_undefined_symbol_errors;
    tc "duplicate symbols error" test_duplicate_symbol_errors;
    tc "Rel32 resolution" test_rel32_resolution;
    tc "Abs64 fnptr initializer" test_abs64_fnptr_init;
    tc "global initializers" test_global_initializers;
    tc "text is write-protected (W^X)" test_text_protection;
    tc "data is not executable" test_data_not_executable;
    tc "out-of-bounds access faults" test_out_of_bounds_faults;
    tc "reverse symbol lookup" test_symbol_at_reverse_lookup;
    tc "image size limit" test_image_too_small;
  ]
