(* Parser unit tests: declaration forms, attribute grammar, statement and
   expression structure, precedence, and the pretty-printer round-trip. *)

open Util
module Ast = Minic.Ast

let parse src = Minic.Parser.parse_string src

let parse1 src =
  match parse src with
  | [ d ] -> d
  | ds -> Alcotest.failf "expected one declaration, got %d" (List.length ds)

let expect_parse_error src =
  match parse src with
  | exception Minic.Parser.Error _ -> ()
  | _ -> Alcotest.failf "expected a parse error for %S" src

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let test_global_forms () =
  (match parse1 "int x;" with
  | Ast.Dglobal g ->
      check_string "name" "x" g.g_name;
      check_bool "no init" true (g.g_init = None)
  | _ -> Alcotest.fail "expected a global");
  (match parse1 "int x = 42;" with
  | Ast.Dglobal g -> check_bool "init" true (g.g_init = Some 42)
  | _ -> Alcotest.fail "expected a global");
  (match parse1 "int x = -7;" with
  | Ast.Dglobal g -> check_bool "negative init" true (g.g_init = Some (-7))
  | _ -> Alcotest.fail "expected a global");
  (match parse1 "int buf[128];" with
  | Ast.Dglobal g -> check_bool "array" true (g.g_array = Some 128)
  | _ -> Alcotest.fail "expected an array");
  match parse1 "extern int y;" with
  | Ast.Dglobal g -> check_bool "extern" true g.g_extern
  | _ -> Alcotest.fail "expected extern global"

let test_width_types () =
  List.iter
    (fun (src, width, signed) ->
      match parse1 src with
      | Ast.Dglobal g ->
          check_int (src ^ " width") width (Ast.ty_width g.g_ty);
          check_bool (src ^ " signed") signed (Ast.ty_signed g.g_ty)
      | _ -> Alcotest.fail "expected a global")
    [
      ("int8 a;", 1, true); ("uint8 b;", 1, false);
      ("int16 c;", 2, true); ("uint16 d;", 2, false);
      ("int32 e;", 4, true); ("uint32 f;", 4, false);
      ("int64 g;", 8, true); ("uint64 h;", 8, false);
      ("bool i;", 1, false);
    ]

let test_multiverse_attributes () =
  (match parse1 "multiverse int config;" with
  | Ast.Dglobal g -> check_bool "attr present" true (Ast.is_multiversed g.g_attrs)
  | _ -> Alcotest.fail "expected a global");
  (match parse1 "multiverse values(0, 1, 2) int mode;" with
  | Ast.Dglobal g ->
      check_bool "values" true (Ast.attr_values g.g_attrs = Some [ 0; 1; 2 ])
  | _ -> Alcotest.fail "expected a global");
  (match parse1 "multiverse values(-1, 0, 1) int delta;" with
  | Ast.Dglobal g ->
      check_bool "negative values" true (Ast.attr_values g.g_attrs = Some [ -1; 0; 1 ])
  | _ -> Alcotest.fail "expected a global");
  (match parse1 "extern multiverse bool A;" with
  | Ast.Dglobal g ->
      check_bool "extern+multiverse" true (g.g_extern && Ast.is_multiversed g.g_attrs)
  | _ -> Alcotest.fail "expected a global");
  match parse1 "multiverse bind(A, B) void f() { }" with
  | Ast.Dfunc f -> check_bool "bind" true (Ast.attr_bind f.f_attrs = Some [ "A"; "B" ])
  | _ -> Alcotest.fail "expected a function"

let test_function_forms () =
  (match parse1 "void f() { }" with
  | Ast.Dfunc f ->
      check_string "name" "f" f.f_name;
      check_bool "defined" true (f.f_body <> None)
  | _ -> Alcotest.fail "expected a function");
  (match parse1 "extern void g(int a, ptr b);" with
  | Ast.Dfunc f ->
      check_bool "declaration" true (f.f_body = None);
      check_int "params" 2 (List.length f.f_params)
  | _ -> Alcotest.fail "expected a function");
  (match parse1 "int h(void) { return 1; }" with
  | Ast.Dfunc f -> check_int "void param list" 0 (List.length f.f_params)
  | _ -> Alcotest.fail "expected a function");
  match parse1 "saveall noinline void k() { }" with
  | Ast.Dfunc f ->
      check_bool "saveall" true (Ast.is_saveall f.f_attrs);
      check_bool "noinline" true (Ast.is_noinline f.f_attrs)
  | _ -> Alcotest.fail "expected a function"

let test_enum () =
  (match parse1 "enum mode { OFF, ON, AUTO };" with
  | Ast.Denum ("mode", items, _) ->
      check_bool "items" true (items = [ ("OFF", 0); ("ON", 1); ("AUTO", 2) ])
  | _ -> Alcotest.fail "expected an enum");
  match parse1 "enum lvl { LOW = 10, MID, HIGH = 20 };" with
  | Ast.Denum ("lvl", items, _) ->
      check_bool "explicit values" true (items = [ ("LOW", 10); ("MID", 11); ("HIGH", 20) ])
  | _ -> Alcotest.fail "expected an enum"

let test_fnptr_global () =
  match parse1 "multiverse fnptr op = &native;" with
  | Ast.Dglobal g ->
      check_bool "fnptr type" true (g.g_ty = Ast.Tfnptr);
      check_bool "fn init" true (g.g_fn_init = Some "native")
  | _ -> Alcotest.fail "expected a fnptr global"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let body_of src =
  match parse1 src with
  | Ast.Dfunc { f_body = Some body; _ } -> body
  | _ -> Alcotest.fail "expected a defined function"

let ret_expr src =
  match body_of src with
  | [ { Ast.sdesc = Ast.Sreturn (Some e); _ } ] -> e
  | _ -> Alcotest.fail "expected a single return"

let rec expr_to_string (e : Ast.expr) =
  match e.edesc with
  | Ast.Eint n -> string_of_int n
  | Ast.Evar v -> v
  | Ast.Eunop (op, a) -> Format.asprintf "(%a%s)" Ast.pp_unop op (expr_to_string a)
  | Ast.Ebinop (op, a, b) ->
      Format.asprintf "(%s%a%s)" (expr_to_string a) Ast.pp_binop op (expr_to_string b)
  | Ast.Econd (c, a, b) ->
      Printf.sprintf "(%s?%s:%s)" (expr_to_string c) (expr_to_string a) (expr_to_string b)
  | Ast.Ecall (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat "," (List.map expr_to_string args))
  | Ast.Eintrinsic (i, args) ->
      Printf.sprintf "%s(%s)" (Ast.intrinsic_name i)
        (String.concat "," (List.map expr_to_string args))
  | Ast.Eindex (a, i) -> Printf.sprintf "%s[%s]" (expr_to_string a) (expr_to_string i)
  | Ast.Ederef p -> Printf.sprintf "(*%s)" (expr_to_string p)
  | Ast.Ederefw (w, p) -> Printf.sprintf "(*%d:%s)" w (expr_to_string p)
  | Ast.Eaddr_of_fun f -> "&" ^ f
  | Ast.Eaddr_of_var v -> "&v:" ^ v

let check_expr name src expected =
  check_string name expected (expr_to_string (ret_expr ("int f() { return " ^ src ^ "; }")))

let test_precedence () =
  check_expr "mul over add" "1 + 2 * 3" "(1+(2*3))";
  check_expr "left assoc sub" "10 - 3 - 2" "((10-3)-2)";
  check_expr "shift under cmp" "a << 1 < b" "((a<<1)<b)";
  check_expr "cmp under eq" "a < b == c < d" "((a<b)==(c<d))";
  check_expr "bitand under bitxor" "a ^ b & c" "(a^(b&c))";
  check_expr "bitor lowest bitwise" "a | b ^ c" "(a|(b^c))";
  check_expr "and over or" "a || b && c" "(a||(b&&c))";
  check_expr "parens" "(1 + 2) * 3" "((1+2)*3)";
  check_expr "unary binds tight" "-a + b" "((-a)+b)";
  check_expr "ternary" "a ? b : c ? d : e" "(a?b:(c?d:e))";
  check_expr "not of comparison" "!(a == b)" "(!(a==b))"

let test_postfix_and_unary () =
  check_expr "call with args" "f(1, x + 1)" "f(1,(x+1))";
  check_expr "index" "buf[i + 1]" "buf[(i+1)]";
  check_expr "deref" "*p" "(*p)";
  check_expr "width deref" "*(int32*)p" "(*4:p)";
  check_expr "address of" "&f" "&f";
  check_expr "intrinsic" "__atomic_xchg(p, 1)" "__atomic_xchg(p,1)";
  check_expr "true/false" "true + false" "(1+0)"

let test_statements () =
  let body =
    body_of
      {|void f() {
         int x = 1;
         x = 2;
         x += 3;
         x++;
         if (x) { x = 4; } else { x = 5; }
         while (x) { break; }
         do { continue; } while (x);
         for (int i = 0; i < 10; i++) { }
         return;
       }|}
  in
  check_int "statement count" 9 (List.length body);
  match body with
  | { Ast.sdesc = Ast.Sdecl ("x", _, Some _); _ } :: _ -> ()
  | _ -> Alcotest.fail "first statement should be a declaration"

let test_single_statement_branches () =
  let body = body_of "void f() { if (1) return; else return; }" in
  match body with
  | [ { Ast.sdesc = Ast.Sif (_, [ _ ], [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "expected single-statement branches"

let test_dangling_else () =
  let body = body_of "void f() { if (1) if (2) return; else return; }" in
  (* else binds to the inner if *)
  match body with
  | [ { Ast.sdesc = Ast.Sif (_, [ { Ast.sdesc = Ast.Sif (_, _, [ _ ]); _ } ], []); _ } ] -> ()
  | _ -> Alcotest.fail "else should bind to the inner if"

let test_parse_errors () =
  expect_parse_error "int;";
  expect_parse_error "int f( { }";
  expect_parse_error "void f() { return }";
  expect_parse_error "void f() { 1 +; }";
  (* "values without multiverse" is a *typecheck* error, so it parses; a
     missing paren does not *)
  expect_parse_error "multiverse values 1 int x;";
  expect_parse_error "enum e { };";
  expect_parse_error "void f() { if 1 { } }"

let test_pretty_roundtrip () =
  let src =
    {|
    enum mode { OFF = 0, ON = 1 };
    multiverse values(0, 1, 2) int level;
    extern multiverse bool flag;
    int arr[16];
    multiverse fnptr op = &f;
    noinline int f(int a, int b) {
      int x = (a + b) * 2;
      if (x > 0 && flag) {
        x = arr[a] + *(int16*)(arr + 8);
      } else {
        while (x) { x = x - 1; }
      }
      for (int i = 0; i < b; i++) { x += i; }
      return x > 0 ? x : -x;
    }
  |}
  in
  let tu = parse src in
  let printed = Minic.Pretty.to_string tu in
  let tu2 = parse printed in
  let printed2 = Minic.Pretty.to_string tu2 in
  check_string "pretty-print fixpoint" printed printed2

let suite =
  [
    tc "global declaration forms" test_global_forms;
    tc "width types" test_width_types;
    tc "multiverse attributes" test_multiverse_attributes;
    tc "function forms" test_function_forms;
    tc "enum declarations" test_enum;
    tc "fnptr globals" test_fnptr_global;
    tc "operator precedence" test_precedence;
    tc "postfix and unary" test_postfix_and_unary;
    tc "statement forms" test_statements;
    tc "single-statement branches" test_single_statement_branches;
    tc "dangling else" test_dangling_else;
    tc "parse errors" test_parse_errors;
    tc "pretty-printer round trip" test_pretty_roundtrip;
  ]
