(* Property-based tests (qcheck).

   The central property is the paper's soundness claim (Section 7.4): for
   any program and any configuration assignment, a committed image behaves
   exactly like the generic, dynamically-evaluating one.  A random Mini-C
   program generator drives this, together with:
   - back-end correctness: machine execution == reference interpreter,
   - revert restores the text segment byte-for-byte,
   - commit idempotence,
   - optimizer semantic preservation. *)

open Util
module Image = Mv_link.Image
module Runtime = Core.Runtime

(* ------------------------------------------------------------------ *)
(* Random Mini-C generator                                             *)
(* ------------------------------------------------------------------ *)

(* Expressions over: the switches a (domain {0,1}) and b ({0,1,2}), plain
   globals g0/g1, locals x/y, and a parameter n.  Division-free so no traps;
   shifts bounded. *)
let gen_expr : string QCheck.Gen.t =
  let open QCheck.Gen in
  sized @@ fix (fun self size ->
      let leaf =
        oneof
          [
            map string_of_int (int_range (-20) 20);
            oneofl [ "a"; "b"; "g0"; "g1"; "x"; "y"; "n" ];
          ]
      in
      if size <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 5,
              let* op =
                oneofl [ "+"; "-"; "*"; "&"; "|"; "^"; "<"; "<="; "=="; "!="; ">"; ">=" ]
              in
              let* l = self (size / 2) and* r = self (size / 2) in
              return (Printf.sprintf "(%s %s %s)" l op r) );
            ( 1,
              let* e = self (size / 2) in
              let* k = int_range 0 3 in
              return (Printf.sprintf "(%s << %d)" e k) );
            ( 1,
              let* e = self (size / 2) in
              return (Printf.sprintf "(-(%s))" e) );
            ( 1,
              let* e = self (size / 2) in
              return (Printf.sprintf "(!(%s))" e) );
            ( 2,
              let* c = self (size / 3) and* t = self (size / 3) and* f = self (size / 3) in
              return (Printf.sprintf "(%s ? %s : %s)" c t f) );
            ( 2,
              let* l = self (size / 2) and* r = self (size / 2) in
              let* op = oneofl [ "&&"; "||" ] in
              return (Printf.sprintf "(%s %s %s)" l op r) );
          ])

let gen_stmts : string QCheck.Gen.t =
  let open QCheck.Gen in
  let stmt depth self =
    frequency
      [
        ( 4,
          let* e = gen_expr in
          return (Printf.sprintf "w = w * 3 + (%s);" e) );
        ( 2,
          let* e = gen_expr in
          return (Printf.sprintf "x = (%s);" e) );
        ( 1,
          let* e = gen_expr in
          return (Printf.sprintf "y = y + (%s);" e) );
        ( 3,
          if depth <= 0 then return "w = w + 1;"
          else
            let* c = gen_expr in
            let* body = self (depth - 1) in
            let* els = self (depth - 1) in
            return (Printf.sprintf "if (%s) { %s } else { %s }" c body els) );
        ( 1,
          if depth <= 0 then return "w = w + 2;"
          else
            let* k = int_range 1 4 in
            let* body = self (depth - 1) in
            return (Printf.sprintf "for (int i = 0; i < %d; i++) { %s }" k body) );
        (1, return "aux(w & 1023);");
        (1, return "w = w + aux(x);");
      ]
  in
  let rec block depth =
    let* count = int_range 1 4 in
    let* stmts = list_repeat count (stmt depth block) in
    return (String.concat "\n        " stmts)
  in
  block 2

let program_of_stmts stmts =
  Printf.sprintf
    {|
    multiverse int a;
    multiverse values(0, 1, 2) int b;
    int g0 = 3;
    int g1 = -5;
    int w;
    int aux(int v) { return (v * 2) + 1; }
    multiverse void mvfn(int n) {
      int x = n;
      int y = 0;
      %s
    }
    int driver(int n) {
      w = 0;
      mvfn(n);
      return w;
    }
  |}
    stmts

type case = { src : string; a : int; b : int; n : int }

let gen_case : case QCheck.Gen.t =
  let open QCheck.Gen in
  let* stmts = gen_stmts in
  (* include out-of-domain values to exercise the generic fallback *)
  let* a = oneofl [ 0; 1; 3 ] in
  let* b = oneofl [ 0; 1; 2; 7 ] in
  let* n = int_range (-5) 20 in
  return { src = program_of_stmts stmts; a; b; n }

let arbitrary_case =
  QCheck.make
    ~print:(fun c -> Printf.sprintf "a=%d b=%d n=%d\n%s" c.a c.b c.n c.src)
    gen_case

(* bound the machine so pathological programs cannot hang the suite *)
let quick_session src =
  let program = build src in
  let machine =
    Mv_vm.Machine.create ~max_steps:2_000_000 program.Core.Compiler.p_image
  in
  let runtime =
    Core.Runtime.create program.Core.Compiler.p_image ~flush:(fun ~addr ~len ->
        Mv_vm.Machine.flush_icache machine ~addr ~len)
  in
  ({ program; machine; runtime } : session)

let count = 60  (* full compile + commit per case keeps this moderate *)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(** Section 7.4 soundness: committed == generic for every assignment. *)
let prop_commit_soundness =
  QCheck.Test.make ~name:"commit preserves semantics (soundness)" ~count arbitrary_case
    (fun c ->
      let dynamic = quick_session c.src in
      set_global dynamic "a" c.a;
      set_global dynamic "b" c.b;
      let expected = run dynamic "driver" [ c.n ] in
      let committed = quick_session c.src in
      set_global committed "a" c.a;
      set_global committed "b" c.b;
      ignore (Runtime.commit committed.runtime);
      let actual = run committed "driver" [ c.n ] in
      expected = actual)

(** Machine == reference interpreter on the same generic program. *)
let prop_backend_differential =
  QCheck.Test.make ~name:"machine matches the reference interpreter" ~count
    arbitrary_case (fun c ->
      let prog, _ = Mv_ir.Lower.lower_string c.src in
      let t = Mv_ir.Interp.create ~step_limit:2_000_000 [ prog ] in
      Mv_ir.Interp.write_global t "a" c.a;
      Mv_ir.Interp.write_global t "b" c.b;
      let expected = Mv_ir.Interp.run t "driver" [ c.n ] in
      let s = quick_session c.src in
      set_global s "a" c.a;
      set_global s "b" c.b;
      expected = run s "driver" [ c.n ])

(** Optimizer preserves semantics on random programs. *)
let prop_optimizer_preserves =
  QCheck.Test.make ~name:"optimizer preserves semantics" ~count arbitrary_case
    (fun c ->
      let run_with optimize =
        let prog, _ = Mv_ir.Lower.lower_string c.src in
        if optimize then Mv_opt.Pass.optimize_prog prog;
        let t = Mv_ir.Interp.create ~step_limit:2_000_000 [ prog ] in
        Mv_ir.Interp.write_global t "a" c.a;
        Mv_ir.Interp.write_global t "b" c.b;
        Mv_ir.Interp.run t "driver" [ c.n ]
      in
      run_with false = run_with true)

(** Revert restores the text segment byte-for-byte. *)
let prop_revert_restores_text =
  QCheck.Test.make ~name:"revert restores the text segment" ~count arbitrary_case
    (fun c ->
      let s = quick_session c.src in
      let img = s.program.Core.Compiler.p_image in
      let text = img.Image.text in
      let snapshot () = Bytes.sub img.Image.mem text.Image.sr_base text.Image.sr_size in
      let before = snapshot () in
      set_global s "a" c.a;
      set_global s "b" c.b;
      ignore (Runtime.commit s.runtime);
      ignore (Runtime.revert s.runtime);
      Bytes.equal before (snapshot ()))

(** Committing twice with the same values is a no-op on the text. *)
let prop_commit_idempotent =
  QCheck.Test.make ~name:"commit is idempotent" ~count arbitrary_case (fun c ->
      let s = quick_session c.src in
      let img = s.program.Core.Compiler.p_image in
      let text = img.Image.text in
      let snapshot () = Bytes.sub img.Image.mem text.Image.sr_base text.Image.sr_size in
      set_global s "a" c.a;
      set_global s "b" c.b;
      ignore (Runtime.commit s.runtime);
      let first = snapshot () in
      ignore (Runtime.commit s.runtime);
      Bytes.equal first (snapshot ()))

(** Re-committing after switch flips always tracks the current values. *)
let prop_recommit_tracks_switches =
  QCheck.Test.make ~name:"re-commit tracks switch changes" ~count:30 arbitrary_case
    (fun c ->
      let dynamic = quick_session c.src in
      let committed = quick_session c.src in
      List.for_all
        (fun (a, b) ->
          set_global dynamic "a" a;
          set_global dynamic "b" b;
          set_global committed "a" a;
          set_global committed "b" b;
          ignore (Runtime.commit committed.runtime);
          run dynamic "driver" [ c.n ] = run committed "driver" [ c.n ])
        [ (c.a, c.b); (1, 2); (0, 0); (c.a, 1) ])

(** The guard boxes of a function's variants partition the full domain:
    exactly one variant record matches every in-domain assignment. *)
let prop_guards_partition_domain =
  QCheck.Test.make ~name:"variant guards partition the domain" ~count:40
    arbitrary_case (fun c ->
      let s = quick_session c.src in
      let img = s.program.Core.Compiler.p_image in
      let fns = Core.Descriptor.parse_functions img in
      let a_addr = Image.symbol img "a" in
      let b_addr = Image.symbol img "b" in
      List.for_all
        (fun (f : Core.Descriptor.function_record) ->
          f.fd_variants = []
          || List.for_all
               (fun (a, b) ->
                 let matches =
                   List.filter
                     (fun (v : Core.Descriptor.variant_record) ->
                       List.for_all
                         (fun (g : Core.Descriptor.guard_record) ->
                           let value =
                             if g.gr_var = a_addr then a
                             else if g.gr_var = b_addr then b
                             else 0
                           in
                           g.gr_lo <= value && value <= g.gr_hi)
                         v.va_guards)
                     f.fd_variants
                 in
                 List.length matches = 1)
               [ (0, 0); (0, 1); (0, 2); (1, 0); (1, 1); (1, 2) ])
        fns)

(* ------------------------------------------------------------------ *)
(* Structural properties (no compilation involved)                     *)
(* ------------------------------------------------------------------ *)

(** Guard box covers are exact: an assignment satisfies some box iff it is
    in the covered set. *)
let prop_box_cover_exact =
  let gen =
    let open QCheck.Gen in
    let* n = int_range 1 8 in
    let* raw =
      list_repeat n
        (let* a = int_range 0 3 and* b = int_range 0 3 in
         return [ ("a", a); ("b", b) ])
    in
    return (List.sort_uniq compare raw)
  in
  let arb =
    QCheck.make
      ~print:(fun set ->
        String.concat "; "
          (List.map
             (fun assignment ->
               String.concat ","
                 (List.map (fun (v, x) -> Printf.sprintf "%s=%d" v x) assignment))
             set))
      gen
  in
  QCheck.Test.make ~name:"guard boxes cover exactly the assignment set" ~count:300 arb
    (fun set ->
      let boxes = Core.Guard.boxes_of_assignments set in
      let satisfies assignment box =
        Core.Guard.satisfied_by box (fun v -> List.assoc v assignment)
      in
      let all_assignments =
        List.concat_map
          (fun a -> List.map (fun b -> [ ("a", a); ("b", b) ]) [ 0; 1; 2; 3 ])
          [ 0; 1; 2; 3 ]
      in
      List.for_all
        (fun assignment ->
          let covered = List.exists (satisfies assignment) boxes in
          covered = List.mem assignment set)
        all_assignments)

(** Canonical forms are invariant under block-id and register renumbering. *)
let prop_canonical_form_invariant =
  QCheck.Test.make ~name:"canonical form invariant under renumbering" ~count:40
    arbitrary_case (fun c ->
      let prog, _ = Mv_ir.Lower.lower_string c.src in
      List.for_all
        (fun (fn : Mv_ir.Ir.fn) ->
          let renumber (fn : Mv_ir.Ir.fn) : Mv_ir.Ir.fn =
            let shift_block b = b + 1000 in
            let shift_reg r = r + 500 in
            let shift_op = function
              | Mv_ir.Ir.Reg r -> Mv_ir.Ir.Reg (shift_reg r)
              | Mv_ir.Ir.Imm n -> Mv_ir.Ir.Imm n
            in
            let shift_instr i =
              let i = Mv_ir.Ir.map_instr_operands shift_op i in
              match i with
              | Mv_ir.Ir.Imov (d, s) -> Mv_ir.Ir.Imov (shift_reg d, s)
              | Mv_ir.Ir.Iun (op, d, a) -> Mv_ir.Ir.Iun (op, shift_reg d, a)
              | Mv_ir.Ir.Ibin (op, d, a, b) -> Mv_ir.Ir.Ibin (op, shift_reg d, a, b)
              | Mv_ir.Ir.Iload (d, a, w) -> Mv_ir.Ir.Iload (shift_reg d, a, w)
              | Mv_ir.Ir.Istore (a, v, w) -> Mv_ir.Ir.Istore (a, v, w)
              | Mv_ir.Ir.Iloadg (d, s, w) -> Mv_ir.Ir.Iloadg (shift_reg d, s, w)
              | Mv_ir.Ir.Istoreg (s, v, w) -> Mv_ir.Ir.Istoreg (s, v, w)
              | Mv_ir.Ir.Iaddr (d, s) -> Mv_ir.Ir.Iaddr (shift_reg d, s)
              | Mv_ir.Ir.Icall (d, s, args) ->
                  Mv_ir.Ir.Icall (Option.map shift_reg d, s, args)
              | Mv_ir.Ir.Icallp (d, s, args) ->
                  Mv_ir.Ir.Icallp (Option.map shift_reg d, s, args)
              | Mv_ir.Ir.Iintr (d, intr, args) ->
                  Mv_ir.Ir.Iintr (Option.map shift_reg d, intr, args)
            in
            let shift_term = function
              | Mv_ir.Ir.Tjmp t -> Mv_ir.Ir.Tjmp (shift_block t)
              | Mv_ir.Ir.Tbr (c', t, f) -> Mv_ir.Ir.Tbr (shift_op c', shift_block t, shift_block f)
              | Mv_ir.Ir.Tret v -> Mv_ir.Ir.Tret (Option.map shift_op v)
            in
            {
              fn with
              Mv_ir.Ir.fn_params = List.map shift_reg fn.Mv_ir.Ir.fn_params;
              fn_nregs = fn.Mv_ir.Ir.fn_nregs + 500;
              fn_blocks =
                List.map
                  (fun (b : Mv_ir.Ir.block) ->
                    {
                      Mv_ir.Ir.b_id = shift_block b.b_id;
                      b_instrs = List.map shift_instr b.b_instrs;
                      b_term = shift_term b.b_term;
                    })
                  fn.Mv_ir.Ir.fn_blocks;
            }
          in
          Mv_opt.Merge.equal_bodies fn (renumber fn))
        prog.Mv_ir.Ir.p_fns)

(** Interpreter truncation semantics. *)
let prop_truncate =
  QCheck.Test.make ~name:"truncate is idempotent and width-bounded" ~count:300
    QCheck.(pair (oneofl [ 1; 2; 4 ]) int)
    (fun (width, v) ->
      let u = Mv_ir.Interp.truncate ~width ~signed:false v in
      let s = Mv_ir.Interp.truncate ~width ~signed:true v in
      let bits = width * 8 in
      u >= 0
      && u < 1 lsl bits
      && s >= -(1 lsl (bits - 1))
      && s < 1 lsl (bits - 1)
      && Mv_ir.Interp.truncate ~width ~signed:false u = u
      && Mv_ir.Interp.truncate ~width ~signed:true s = s
      && u land ((1 lsl bits) - 1) = v land ((1 lsl bits) - 1))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_commit_soundness;
      prop_backend_differential;
      prop_optimizer_preserves;
      prop_revert_restores_text;
      prop_commit_idempotent;
      prop_recommit_tracks_switches;
      prop_guards_partition_domain;
      prop_box_cover_exact;
      prop_canonical_form_invariant;
      prop_truncate;
    ]
