(* Lexer unit tests. *)

open Util

module Token = Minic.Token

let toks src =
  List.map fst (Minic.Lexer.tokenize src) |> List.filter (fun t -> t <> Token.EOF)

let token = Alcotest.testable (fun fmt t -> Format.pp_print_string fmt (Token.to_string t)) ( = )

let check_tokens name src expected = Alcotest.(check (list token)) name expected (toks src)

let test_integers () =
  check_tokens "decimal" "42" [ Token.INT 42 ];
  check_tokens "zero" "0" [ Token.INT 0 ];
  check_tokens "hex" "0x2A" [ Token.INT 42 ];
  check_tokens "hex lowercase" "0xff" [ Token.INT 255 ];
  check_tokens "adjacent" "1 2 3" [ Token.INT 1; Token.INT 2; Token.INT 3 ]

let test_character_literals () =
  check_tokens "plain char" "'a'" [ Token.INT 97 ];
  check_tokens "newline escape" "'\\n'" [ Token.INT 10 ];
  check_tokens "zero escape" "'\\0'" [ Token.INT 0 ];
  check_tokens "backslash" "'\\\\'" [ Token.INT 92 ]

let test_identifiers_and_keywords () =
  check_tokens "identifier" "foo_bar1" [ Token.IDENT "foo_bar1" ];
  check_tokens "keyword int" "int" [ Token.KW_INT ];
  check_tokens "keyword multiverse" "multiverse" [ Token.KW_MULTIVERSE ];
  check_tokens "values/bind" "values bind" [ Token.KW_VALUES; Token.KW_BIND ];
  check_tokens "underscore start" "_x" [ Token.IDENT "_x" ];
  check_tokens "keyword prefix is ident" "intx" [ Token.IDENT "intx" ]

let test_operators () =
  check_tokens "comparison" "< <= > >= == !="
    [ Token.LT; Token.LE; Token.GT; Token.GE; Token.EQ; Token.NE ];
  check_tokens "shifts" "<< >>" [ Token.SHL; Token.SHR ];
  check_tokens "logical" "&& || !" [ Token.ANDAND; Token.OROR; Token.BANG ];
  check_tokens "bitwise" "& | ^ ~" [ Token.AMP; Token.PIPE; Token.CARET; Token.TILDE ];
  check_tokens "compound" "+= -= ++ --"
    [ Token.PLUSEQ; Token.MINUSEQ; Token.PLUSPLUS; Token.MINUSMINUS ];
  check_tokens "assign vs eq" "= ==" [ Token.ASSIGN; Token.EQ ]

let test_comments () =
  check_tokens "line comment" "1 // ignored\n2" [ Token.INT 1; Token.INT 2 ];
  check_tokens "block comment" "1 /* x\ny */ 2" [ Token.INT 1; Token.INT 2 ];
  check_tokens "comment at eof" "1 // end" [ Token.INT 1 ]

let test_locations () =
  let all = Minic.Lexer.tokenize "a\n  b" in
  match all with
  | [ (Token.IDENT "a", la); (Token.IDENT "b", lb); (Token.EOF, _) ] ->
      check_int "a line" 1 la.Minic.Ast.line;
      check_int "a col" 1 la.Minic.Ast.col;
      check_int "b line" 2 lb.Minic.Ast.line;
      check_int "b col" 3 lb.Minic.Ast.col
  | _ -> Alcotest.fail "unexpected token stream"

let expect_lex_error src =
  match Minic.Lexer.tokenize src with
  | exception Minic.Lexer.Error _ -> ()
  | _ -> Alcotest.failf "expected a lexer error for %S" src

let test_errors () =
  expect_lex_error "@";
  expect_lex_error "/* unterminated";
  expect_lex_error "'a";
  expect_lex_error "0x";
  expect_lex_error "\"unterminated"

let suite =
  [
    tc "integer literals" test_integers;
    tc "character literals" test_character_literals;
    tc "identifiers and keywords" test_identifiers_and_keywords;
    tc "operators" test_operators;
    tc "comments" test_comments;
    tc "source locations" test_locations;
    tc "lexical errors" test_errors;
  ]
