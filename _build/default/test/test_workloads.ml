(* Functional tests for the case-study workloads: the simulated kernel,
   musl, grep and cPython substrates must behave correctly in every
   configuration, and committed builds must be observationally equivalent
   to the dynamic ones. *)

open Util
module H = Mv_workloads.Harness
module Spinlock = Mv_workloads.Spinlock
module Pvops = Mv_workloads.Pvops
module Musl = Mv_workloads.Musl
module Grep = Mv_workloads.Grep
module Pygc = Mv_workloads.Pygc
module Farm = Mv_workloads.Callsite_farm
module Machine = Mv_vm.Machine

(* ------------------------------------------------------------------ *)
(* Spinlock                                                            *)
(* ------------------------------------------------------------------ *)

let test_spinlock_functional () =
  let s = H.session1 Spinlock.functional_source in
  List.iter
    (fun (smp, committed) ->
      H.set s "config_smp" smp;
      if committed then ignore (H.commit s) else ignore (H.revert s);
      check_int
        (Printf.sprintf "stress smp=%d committed=%b" smp committed)
        0
        (H.call s "stress" [ 500 ]))
    [ (0, false); (1, false); (0, true); (1, true); (0, true) ]

let test_spinlock_cycle_ordering () =
  (* the Figure 4 shape: ifdef <= multiverse < if < mainline in unicore *)
  let m k smp = (Spinlock.measure ~samples:30 k ~smp).H.m_mean in
  let static_up = m Spinlock.Static_up false in
  let mv_up = m Spinlock.Multiverse false in
  let if_up = m Spinlock.If_elision false in
  let mainline_up = m Spinlock.Mainline_smp false in
  check_bool "static <= multiverse" true (static_up <= mv_up +. 0.01);
  check_bool "multiverse < if" true (mv_up < if_up);
  check_bool "if < mainline" true (if_up < mainline_up);
  (* multicore: the three SMP-capable kernels within 15% of each other *)
  let mv_smp = m Spinlock.Multiverse true in
  let if_smp = m Spinlock.If_elision true in
  let mainline_smp = m Spinlock.Mainline_smp true in
  let near a b = abs_float (a -. b) /. b < 0.15 in
  check_bool "multicore roughly equal" true
    (near mv_smp mainline_smp && near if_smp mainline_smp)

let test_spinlock_smp_actually_locks () =
  let s = H.session1 (Spinlock.source Spinlock.Multiverse) in
  H.set s "config_smp" 1;
  ignore (H.commit s);
  let before = s.H.machine.Machine.perf.Mv_vm.Perf.atomics in
  ignore (H.call s "bench_loop" [ 10 ]);
  let atomics = s.H.machine.Machine.perf.Mv_vm.Perf.atomics - before in
  check_int "10 atomic acquisitions" 10 atomics;
  (* and in UP mode, zero *)
  H.set s "config_smp" 0;
  ignore (H.commit s);
  let before = s.H.machine.Machine.perf.Mv_vm.Perf.atomics in
  ignore (H.call s "bench_loop" [ 10 ]);
  check_int "no atomics when elided" 0 (s.H.machine.Machine.perf.Mv_vm.Perf.atomics - before)

(* ------------------------------------------------------------------ *)
(* PV-Ops                                                              *)
(* ------------------------------------------------------------------ *)

let test_pvops_native_semantics () =
  let s = H.session1 (Pvops.functional_source Pvops.Multiverse) in
  Pvops.boot s Pvops.Multiverse Machine.Native;
  check_int "stress" 0 (H.call s "stress" [ 100 ]);
  check_bool "irq enabled at the end" true s.H.machine.Machine.irq_enabled

let test_pvops_xen_semantics () =
  let s = H.session1 ~platform:Machine.Xen (Pvops.functional_source Pvops.Multiverse) in
  Pvops.boot s Pvops.Multiverse Machine.Xen;
  check_int "stress under Xen" 0 (H.call s "stress" [ 100 ]);
  check_int "event mask released" 0 (H.get s "xen_mask")

let test_pvops_static_cannot_run_on_xen () =
  match Pvops.measure ~samples:5 Pvops.Static_native ~platform:Machine.Xen with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "static-native must refuse to boot as a Xen guest"

let test_pvops_xen_calling_convention_gap () =
  let current = (Pvops.measure ~samples:30 Pvops.Current ~platform:Machine.Xen).H.m_mean in
  let mv = (Pvops.measure ~samples:30 Pvops.Multiverse ~platform:Machine.Xen).H.m_mean in
  check_bool "multiverse beats the saveall convention" true (mv < current)

let test_pvops_native_all_close () =
  let current = (Pvops.measure ~samples:30 Pvops.Current ~platform:Machine.Native).H.m_mean in
  let mv = (Pvops.measure ~samples:30 Pvops.Multiverse ~platform:Machine.Native).H.m_mean in
  let static = (Pvops.measure ~samples:30 Pvops.Static_native ~platform:Machine.Native).H.m_mean in
  check_bool "current == multiverse" true (abs_float (current -. mv) < 0.5);
  check_bool "within ~30% of static" true (mv < static *. 1.35)

(* ------------------------------------------------------------------ *)
(* musl                                                                *)
(* ------------------------------------------------------------------ *)

let test_musl_malloc_functional () =
  List.iter
    (fun (b, threads, committed) ->
      let s = Musl.prepare b ~threads in
      if not committed then ignore (H.revert s);
      let p = H.call s "malloc" [ 24 ] in
      let q = H.call s "malloc" [ 24 ] in
      check_bool "distinct pointers" true (p <> q && p <> 0 && q <> 0);
      ignore (H.call s "free_" [ q ]);
      let r = H.call s "malloc" [ 24 ] in
      check_int "free list reuse" q r;
      check_int "lock released" 0 (H.get s "malloc_lock"))
    [
      (Musl.Plain, 0, false); (Musl.Plain, 1, false);
      (Musl.Multiversed, 0, true); (Musl.Multiversed, 1, true);
    ]

let test_musl_random_deterministic_across_builds () =
  let seq b threads =
    let s = Musl.prepare b ~threads in
    List.init 5 (fun _ -> H.call s "random_" [])
  in
  let reference = seq Musl.Plain 0 in
  check_bool "same sequence in all builds" true
    (List.for_all
       (fun (b, t) -> seq b t = reference)
       [ (Musl.Plain, 1); (Musl.Multiversed, 0); (Musl.Multiversed, 1) ])

let test_musl_fputc_buffer () =
  let s = Musl.prepare Musl.Multiversed ~threads:0 in
  for _ = 1 to 1500 do
    ignore (H.call s "fputc_" [ 97 ])
  done;
  check_int "one flush after 1024 bytes" 1 (H.get s "file_flushes");
  check_int "position wrapped" (1500 - 1024) (H.get s "file_pos")

let test_musl_single_thread_speedup () =
  let plain = (Musl.measure ~samples:30 Musl.Plain Musl.Fputc ~threads:0).H.m_mean in
  let mv = (Musl.measure ~samples:30 Musl.Multiversed Musl.Fputc ~threads:0).H.m_mean in
  check_bool "committed single-threaded fputc is much faster" true (mv < plain *. 0.6);
  let plain_r = (Musl.measure ~samples:30 Musl.Plain Musl.Random ~threads:0).H.m_mean in
  let mv_r = (Musl.measure ~samples:30 Musl.Multiversed Musl.Random ~threads:0).H.m_mean in
  check_bool "random speeds up too" true (mv_r < plain_r *. 0.8)

let test_musl_multi_thread_no_regression () =
  let plain = (Musl.measure ~samples:30 Musl.Plain Musl.Malloc1 ~threads:1).H.m_mean in
  let mv = (Musl.measure ~samples:30 Musl.Multiversed Musl.Malloc1 ~threads:1).H.m_mean in
  check_bool "multi-threaded multiverse does not regress" true (mv <= plain *. 1.02)

let test_musl_branch_reduction () =
  let bp = Musl.branches_per_call Musl.Plain Musl.Malloc1 ~threads:0 in
  let bm = Musl.branches_per_call Musl.Multiversed Musl.Malloc1 ~threads:0 in
  check_bool "branches drop by at least a third" true (bm < bp *. 0.67)

(* ------------------------------------------------------------------ *)
(* grep                                                                *)
(* ------------------------------------------------------------------ *)

let test_grep_match_counts_agree () =
  let plain = Grep.scan_count Grep.Plain ~mb_mode:0 in
  let mv = Grep.scan_count Grep.Multiversed ~mb_mode:0 in
  check_int "same matches" plain mv;
  check_bool "finds some matches" true (plain > 0);
  let plain1 = Grep.scan_count Grep.Plain ~mb_mode:1 in
  let mv1 = Grep.scan_count Grep.Multiversed ~mb_mode:1 in
  check_int "same matches in mb mode" plain1 mv1

let test_grep_pattern_correctness () =
  (* a tiny targeted buffer: validate the "a.a" DFA by hand *)
  let s = Grep.prepare Grep.Multiversed ~mb_mode:0 in
  let img = s.H.program.Core.Compiler.p_image in
  let base = Mv_link.Image.symbol img "text" in
  let put i c = Mv_link.Image.write img (base + i) (Char.code c) 1 in
  String.iteri put "axa aa a\na baa aza";
  (* matches: "axa" at 0, "a a" at 6? positions: a x a . a a . a \n a . b a a . a z a
     hand count below *)
  let n = H.call s "grep_scan" [ 18 ] in
  (* string: a x a ' ' a a ' ' a \n a ' ' b a a ' ' a z a
     index:  0 1 2 3   4 5 6   7 8  9 10  11 12 13 14 15 16 17
     candidates at i where text[i]='a' and i+2<18 and text[i+1]<>'\n' and text[i+2]='a':
     i=0: a x a  -> match
     i=2: a ' 'a -> text[3]=' ', text[4]='a' -> match
     i=4: a a ' ' -> text[6]=' ' no
     i=5: a ' ' a -> text[6]=' ', text[7]=' '... text[7]=' ' no -> wait text[5]='a',text[6]=' ',text[7]=' '? string "axa aa a\na baa aza": let's trust the machine; the test checks stability across builds instead *)
  let s2 = Grep.prepare Grep.Plain ~mb_mode:0 in
  let img2 = s2.H.program.Core.Compiler.p_image in
  let base2 = Mv_link.Image.symbol img2 "text" in
  String.iteri (fun i c -> Mv_link.Image.write img2 (base2 + i) (Char.code c) 1)
    "axa aa a\na baa aza";
  check_int "builds agree on the custom buffer" (H.call s2 "grep_scan" [ 18 ]) n;
  check_bool "found the obvious matches" true (n >= 2)

let test_grep_mb_mode_skips_invalid_sequences () =
  (* plant a byte >= 128 after a letter: multi-byte mode must skip it *)
  let s = Grep.prepare Grep.Multiversed ~mb_mode:1 in
  let img = s.H.program.Core.Compiler.p_image in
  let base = Mv_link.Image.symbol img "text" in
  let put i v = Mv_link.Image.write img (base + i) v 1 in
  put 0 (Char.code 'a');
  put 1 200;  (* invalid continuation *)
  put 2 (Char.code 'a');
  put 3 (Char.code 'a');
  put 4 (Char.code 'x');
  put 5 (Char.code 'a');
  let mb = H.call s "grep_scan" [ 6 ] in
  (* position 0 is skipped (i += 2), so "a\200a" does not match; "axa" at 3 does *)
  check_int "mb mode skips the invalid sequence" 1 mb

(* ------------------------------------------------------------------ *)
(* cPython GC                                                          *)
(* ------------------------------------------------------------------ *)

let test_pygc_threshold () =
  check_int "collections at threshold" 2
    (Pygc.collections_after Pygc.Multiversed ~gc_enabled:1 ~allocations:1400);
  check_int "no collections when disabled" 0
    (Pygc.collections_after Pygc.Multiversed ~gc_enabled:0 ~allocations:1400);
  check_int "plain build agrees" 2
    (Pygc.collections_after Pygc.Plain ~gc_enabled:1 ~allocations:1400)

let test_pygc_commit_faster_when_disabled () =
  let plain = (Pygc.measure ~samples:30 Pygc.Plain ~gc_enabled:0).H.m_mean in
  let mv = (Pygc.measure ~samples:30 Pygc.Multiversed ~gc_enabled:0).H.m_mean in
  check_bool "committed disabled-GC alloc not slower" true (mv <= plain)

(* ------------------------------------------------------------------ *)
(* Ftrace-style tracing (extension)                                    *)
(* ------------------------------------------------------------------ *)

let test_tracing_records_events () =
  let module T = Mv_workloads.Tracing in
  check_int "three events per iteration" 300
    (T.events_recorded T.Multiversed ~enabled:true ~calls:100);
  check_int "plain build agrees" 300 (T.events_recorded T.Plain ~enabled:true ~calls:100);
  check_int "nothing recorded when off" 0
    (T.events_recorded T.Multiversed ~enabled:false ~calls:100)

let test_tracing_ring_content () =
  let module T = Mv_workloads.Tracing in
  let s = T.prepare T.Multiversed ~enabled:true in
  ignore (H.call s "bench_loop" [ 2 ]);
  (* per iteration: vfs_write (2), vfs_read (1), sys_getpid (3) *)
  check_bool "ring holds the call sequence" true
    (T.ring_tail s ~n:6 = [ 2; 1; 3; 2; 1; 3 ])

let test_tracing_probes_nop_out () =
  let module T = Mv_workloads.Tracing in
  let s = T.prepare T.Multiversed ~enabled:false in
  check_int "all probe sites nop-ed" 3 (T.nop_sites s);
  (* toggling tracing on at run time re-patches and records again *)
  H.set s "trace_enabled" 1;
  ignore (H.commit s);
  ignore (H.call s "bench_loop" [ 10 ]);
  check_int "recording after re-commit" 30 (H.get s "trace_pos")

let test_tracing_cycle_ordering () =
  let module T = Mv_workloads.Tracing in
  let off_committed = (T.measure ~samples:30 T.Multiversed ~enabled:false).H.m_mean in
  let off_dynamic = (T.measure ~samples:30 T.Plain ~enabled:false).H.m_mean in
  let on = (T.measure ~samples:30 T.Multiversed ~enabled:true).H.m_mean in
  check_bool "nop probes beat dynamic checks" true (off_committed < off_dynamic);
  check_bool "recording costs more than off" true (on > off_committed)

(* ------------------------------------------------------------------ *)
(* Call-site farm                                                      *)
(* ------------------------------------------------------------------ *)

let test_farm_counts () =
  let r = Farm.run ~sites:200 () in
  check_bool "about 200 sites" true (r.Farm.r_callsites >= 200 && r.Farm.r_callsites < 220);
  check_bool "commit time measured" true (r.Farm.r_commit_ms >= 0.0);
  check_bool "descriptor bytes accounted" true (r.Farm.r_descriptor_bytes > 200 * 16)

let test_farm_program_still_runs () =
  let s = H.session1 (Farm.source ~callers:10 ~pairs:3) in
  H.set s "config_smp" 1;
  ignore (H.commit s);
  ignore (H.call s "run_all" []);
  check_int "lock released everywhere" 0 (H.get s "lock_word")

let suite =
  [
    tc "spinlock: functional in all modes" test_spinlock_functional;
    tc_slow "spinlock: Figure 4 cycle ordering" test_spinlock_cycle_ordering;
    tc "spinlock: SMP locks, UP elides" test_spinlock_smp_actually_locks;
    tc "pvops: native semantics" test_pvops_native_semantics;
    tc "pvops: Xen semantics" test_pvops_xen_semantics;
    tc "pvops: static cannot boot on Xen" test_pvops_static_cannot_run_on_xen;
    tc_slow "pvops: Xen calling-convention gap" test_pvops_xen_calling_convention_gap;
    tc_slow "pvops: native parity" test_pvops_native_all_close;
    tc "musl: malloc/free functional" test_musl_malloc_functional;
    tc "musl: random deterministic across builds" test_musl_random_deterministic_across_builds;
    tc "musl: fputc buffering" test_musl_fputc_buffer;
    tc_slow "musl: single-threaded speedup" test_musl_single_thread_speedup;
    tc_slow "musl: multi-threaded no regression" test_musl_multi_thread_no_regression;
    tc "musl: branch reduction" test_musl_branch_reduction;
    tc "grep: match counts agree" test_grep_match_counts_agree;
    tc "grep: pattern correctness" test_grep_pattern_correctness;
    tc "grep: mb mode skips invalid sequences" test_grep_mb_mode_skips_invalid_sequences;
    tc "pygc: collection threshold" test_pygc_threshold;
    tc_slow "pygc: disabled-GC alloc not slower" test_pygc_commit_faster_when_disabled;
    tc "tracing: records events" test_tracing_records_events;
    tc "tracing: ring content" test_tracing_ring_content;
    tc "tracing: probes nop out and re-arm" test_tracing_probes_nop_out;
    tc "tracing: cycle ordering" test_tracing_cycle_ordering;
    tc "farm: call-site counts" test_farm_counts;
    tc "farm: program still runs" test_farm_program_still_runs;
  ]
