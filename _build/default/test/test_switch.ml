(* Tests for the [switch] statement — the natural construct for the paper's
   "rarely-changing program modes" — through the whole pipeline: parsing,
   checking, lowering, machine execution, and multiverse specialization of
   a mode variable. *)

open Util
module Ast = Minic.Ast
module Runtime = Core.Runtime

let test_parse_shapes () =
  let tu =
    Minic.Parser.parse_string
      {|int f(int x) {
          switch (x) {
            case 1: return 10;
            case 2: case 3: return 23;
            default: return 0;
          }
        }|}
  in
  match tu with
  | [ Ast.Dfunc { f_body = Some [ { sdesc = Ast.Sswitch (_, cases, Some _); _ } ]; _ } ] ->
      check_int "two case groups" 2 (List.length cases);
      check_bool "shared labels" true (List.mem [ 2; 3 ] (List.map fst cases))
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_errors () =
  let expect_error src =
    match Minic.Parser.parse_string src with
    | exception Minic.Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected a parse error for %s" src
  in
  expect_error "void f() { switch (1) { case: ; } }";
  expect_error "void f() { switch (1) { default: default: } }";
  expect_error "void f() { switch (1) { return 1; } }"

let test_typecheck_rules () =
  let msg = check_fails "void f(int x) { switch (x) { case 1: case 1: break; } }" in
  check_bool "duplicate labels rejected" true
    (String.length msg > 0);
  (* break legal inside switch, continue is not *)
  let _ = check_ok "void f(int x) { switch (x) { case 1: break; } }" in
  (match Minic.Typecheck.check_string
           "void f(int x) { switch (x) { case 1: continue; } }"
   with
  | exception Minic.Typecheck.Error _ -> ()
  | _ -> Alcotest.fail "continue must be rejected inside a bare switch");
  (* ... but legal when the switch is inside a loop *)
  let _ =
    check_ok
      "void f(int x) { while (x) { switch (x) { case 1: continue; } x = x - 1; } }"
  in
  ()

let dispatch_src =
  {|
  int f(int x) {
    switch (x) {
      case 0: return 100;
      case 1: case 2: return 120;
      case 7: return 700;
      default: return -1;
    }
  }
|}

let test_dispatch_semantics () =
  List.iter
    (fun (arg, expected) ->
      check_differential ~args:[ arg ] (Printf.sprintf "switch(%d)" arg) dispatch_src "f";
      check_int (Printf.sprintf "value for %d" arg) expected (interp_run dispatch_src "f" [ arg ]))
    [ (0, 100); (1, 120); (2, 120); (7, 700); (3, -1); (-5, -1) ]

let test_no_default_falls_through () =
  let src =
    {|int f(int x) {
        int r = 42;
        switch (x) {
          case 1: r = 1;
        }
        return r;
      }|}
  in
  check_differential ~args:[ 1 ] "matched" src "f";
  check_differential ~args:[ 9 ] "unmatched keeps running" src "f";
  check_int "unmatched value" 42 (interp_run src "f" [ 9 ])

let test_break_in_switch () =
  let src =
    {|int f(int x) {
        int r = 0;
        switch (x) {
          case 1:
            r = 1;
            break;
          default:
            r = 2;
        }
        return r * 10;
      }|}
  in
  check_differential ~args:[ 1 ] "break exits the switch" src "f";
  check_int "value" 10 (interp_run src "f" [ 1 ])

let test_switch_in_loop_with_continue () =
  let src =
    {|int f(int n) {
        int evens = 0;
        for (int i = 0; i < n; i++) {
          switch (i & 1) {
            case 1: continue;
          }
          evens = evens + 1;
        }
        return evens;
      }|}
  in
  check_differential ~args:[ 10 ] "continue targets the loop" src "f";
  check_int "value" 5 (interp_run src "f" [ 10 ])

let test_nested_switch () =
  let src =
    {|int f(int a, int b) {
        switch (a) {
          case 1:
            switch (b) {
              case 1: return 11;
              default: return 10;
            }
          default:
            return 0;
        }
      }|}
  in
  List.iter
    (fun (a, b, expected) ->
      check_int (Printf.sprintf "nested %d %d" a b) expected (interp_run src "f" [ a; b ]))
    [ (1, 1, 11); (1, 5, 10); (2, 1, 0) ]

let test_multiverse_specializes_mode_switch () =
  (* the paper's "rarely-changing program modes": a multiversed dispatcher
     over an enum mode collapses to a straight return when committed *)
  let src =
    {|
    enum mode { OFF, SLOW, FAST };
    multiverse enum mode m;
    multiverse int step() {
      switch (m) {
        case 0: return 0;
        case 1: return 1;
        case 2: return 10;
      }
      return -1;
    }
    int run(int n) {
      int total = 0;
      for (int i = 0; i < n; i++) {
        total = total + step();
      }
      return total;
    }
  |}
  in
  let s = session src in
  List.iter
    (fun (mode, expected) ->
      set_global s "m" mode;
      ignore (Runtime.commit s.runtime);
      check_int (Printf.sprintf "mode %d" mode) expected (run s "run" [ 10 ]))
    [ (0, 0); (1, 10); (2, 100) ];
  (* the committed variant for a fixed mode is branch-free: the whole test
     chain folds away *)
  let img = s.program.Core.Compiler.p_image in
  let fns = Core.Descriptor.parse_functions img in
  let f = List.hd fns in
  check_int "three variants (one per enum item)" 3
    (List.length f.Core.Descriptor.fd_variants);
  List.iter
    (fun (v : Core.Descriptor.variant_record) ->
      (* a specialized mode variant is just "mov r0, k; ret" *)
      check_bool "variant is tiny" true (v.Core.Descriptor.va_size <= 8))
    f.Core.Descriptor.fd_variants;
  (* committed dispatch executes no conditional branches in step() *)
  set_global s "m" 2;
  ignore (Runtime.commit s.runtime);
  let before = s.machine.Mv_vm.Machine.perf.Mv_vm.Perf.branches in
  ignore (run s "step" []);
  check_int "branch-free committed dispatch" 0
    (s.machine.Mv_vm.Machine.perf.Mv_vm.Perf.branches - before)

let test_pretty_roundtrip_with_switch () =
  let src =
    {|int f(int x) {
        switch (x + 1) {
          case 1: return 10;
          case 2: case 3: { int y = x; return y; }
          default: return 0;
        }
      }|}
  in
  let tu = Minic.Parser.parse_string src in
  let printed = Minic.Pretty.to_string tu in
  let tu2 = Minic.Parser.parse_string printed in
  let printed2 = Minic.Pretty.to_string tu2 in
  check_string "fixpoint" printed printed2

let suite =
  [
    tc "parse shapes" test_parse_shapes;
    tc "parse errors" test_parse_errors;
    tc "typecheck rules" test_typecheck_rules;
    tc "dispatch semantics (differential)" test_dispatch_semantics;
    tc "no default falls through" test_no_default_falls_through;
    tc "break exits the switch" test_break_in_switch;
    tc "continue inside switch targets the loop" test_switch_in_loop_with_continue;
    tc "nested switches" test_nested_switch;
    tc "multiverse specializes a mode dispatcher" test_multiverse_specializes_mode_switch;
    tc "pretty-printer round trip" test_pretty_roundtrip_with_switch;
  ]
