test/test_switch.ml: Alcotest Core List Minic Mv_vm Printf String Util
