test/test_asm.ml: Bytes Core List Mv_isa Mv_link String Util
