test/test_harness.ml: Core List Mv_link Mv_vm Mv_workloads Util
