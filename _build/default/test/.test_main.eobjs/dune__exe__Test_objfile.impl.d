test/test_objfile.ml: Alcotest Bytes Char Core List Mv_codegen Util
