test/test_compiler.ml: Alcotest Core List Mv_link Printf String Util
