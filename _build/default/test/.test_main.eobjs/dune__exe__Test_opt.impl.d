test/test_opt.ml: List Mv_ir Mv_opt Printf String Util
