test/test_link.ml: Alcotest Core List Mv_codegen Mv_isa Mv_link Option String Util
