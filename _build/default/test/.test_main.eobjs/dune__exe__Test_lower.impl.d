test/test_lower.ml: Alcotest List Mv_ir String Util
