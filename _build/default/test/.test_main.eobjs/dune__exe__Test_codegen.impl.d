test/test_codegen.ml: Alcotest Bytes List Mv_codegen Mv_ir Mv_isa Mv_link Util
