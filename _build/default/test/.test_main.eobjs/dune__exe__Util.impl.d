test/util.ml: Alcotest Core Minic Mv_ir Mv_link Mv_opt Mv_vm
