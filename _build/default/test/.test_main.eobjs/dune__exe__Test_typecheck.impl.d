test/test_typecheck.ml: List Minic Printf String Util
