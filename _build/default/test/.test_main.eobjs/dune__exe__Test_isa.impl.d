test/test_isa.ml: Alcotest Bytes List Mv_isa QCheck QCheck_alcotest Util
