test/test_workloads.ml: Alcotest Char Core List Mv_link Mv_vm Mv_workloads Printf String Util
