test/test_diff_battery.ml: List Util
