test/test_descriptor.ml: Alcotest Core List Mv_codegen Mv_isa Mv_link Option Util
