test/test_extensions.ml: Alcotest Bytes Core List Mv_isa Mv_link Mv_vm Mv_workloads Printf Util
