test/test_variantgen.ml: Alcotest Core List Mv_ir Printf String Util
