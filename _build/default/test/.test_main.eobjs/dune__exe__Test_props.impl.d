test/test_props.ml: Bytes Core List Mv_ir Mv_link Mv_opt Mv_vm Option Printf QCheck QCheck_alcotest String Util
