test/test_runtime.ml: Alcotest Array Bytes Core List Mv_isa Mv_link Mv_vm Util
