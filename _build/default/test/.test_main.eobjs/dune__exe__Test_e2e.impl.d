test/test_e2e.ml: Alcotest Bytes Char Core List Mv_link Printf String Util
