test/test_parser.ml: Alcotest Format List Minic Printf String Util
