test/test_lexer.ml: Alcotest Format List Minic Util
