test/test_vm.ml: Alcotest Array Core Mv_isa Mv_link Mv_vm Util
