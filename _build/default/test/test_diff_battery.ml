(* A battery of hand-written tricky programs, each run through the full
   pipeline (compile, link, execute on the machine) and checked against the
   reference interpreter plus an explicitly computed expected value.  These
   complement the random differential property with targeted corner
   cases. *)

open Util

(* (name, source, entry, args, expected) *)
let cases : (string * string * string * int list * int) list =
  [
    ( "shadowing across scopes",
      {|int f(int x) {
          int r = x;
          { int x = 100; r = r + x; }
          if (x > 0) { int x = 1000; r = r + x; }
          return r + x;
        }|},
      "f", [ 5 ], 5 + 100 + 1000 + 5 );
    ( "deeply nested arithmetic",
      {|int f(int a, int b) {
          return ((a + b) * (a - b) + (a * a - b * b)) / 2 + ((a ^ b) & (a | b));
        }|},
      "f", [ 9; 4 ], (((9 + 4) * (9 - 4)) + ((9 * 9) - (4 * 4))) / 2 + ((9 lxor 4) land (9 lor 4)) );
    ( "logical operator values",
      "int f(int x) { return (x && 7) * 100 + (x || 0) * 10 + !x; }",
      "f", [ 3 ], 110 );
    ( "ternary chains",
      "int f(int x) { return x < 0 ? -1 : x == 0 ? 0 : x < 10 ? 1 : 2; }",
      "f", [ 7 ], 1 );
    ( "while with complex condition",
      {|int f(int n) {
          int i = 0;
          int s = 0;
          while (i < n && s < 50) { s = s + i; i = i + 1; }
          return s * 100 + i;
        }|},
      "f", [ 100 ], (55 * 100) + 11 );
    ( "triple nested loops",
      {|int f(int n) {
          int c = 0;
          for (int i = 0; i < n; i++) {
            for (int j = 0; j < i; j++) {
              for (int k = 0; k < j; k++) { c = c + 1; }
            }
          }
          return c;
        }|},
      "f", [ 6 ], 20 );
    ( "early returns from loops",
      {|int f(int n) {
          for (int i = 0; i < 100; i++) {
            if (i * i >= n) { return i; }
          }
          return -1;
        }|},
      "f", [ 50 ], 8 );
    ( "ackermann (small)",
      {|int ack(int m, int n) {
          if (m == 0) { return n + 1; }
          if (n == 0) { return ack(m - 1, 1); }
          return ack(m - 1, ack(m, n - 1));
        }|},
      "ack", [ 2; 3 ], 9 );
    ( "gcd",
      {|int gcd(int a, int b) {
          while (b) { int t = b; b = a % b; a = t; }
          return a;
        }|},
      "gcd", [ 252; 105 ], 21 );
    ( "collatz steps",
      {|int f(int n) {
          int steps = 0;
          while (n != 1) {
            if (n & 1) { n = n * 3 + 1; } else { n = n / 2; }
            steps = steps + 1;
          }
          return steps;
        }|},
      "f", [ 27 ], 111 );
    ( "global array as scratch memory",
      {|int a[32];
        int f(int n) {
          for (int i = 0; i < 32; i++) { a[i] = 0; }
          a[0] = 0; a[1] = 1;
          for (int i = 2; i <= n; i++) { a[i] = a[i - 1] + a[i - 2]; }
          return a[n];
        }|},
      "f", [ 20 ], 6765 );
    ( "byte buffer checksum",
      {|uint8 buf[64];
        int f() {
          for (int i = 0; i < 64; i++) { buf[i] = i * 7; }
          int s = 0;
          for (int i = 0; i < 64; i++) { s = s + buf[i]; }
          return s;
        }|},
      "f", [],
      (let s = ref 0 in
       for i = 0 to 63 do
         s := !s + (i * 7 mod 256)
       done;
       !s) );
    ( "pointer walking",
      {|int a[8];
        int f() {
          for (int i = 0; i < 8; i++) { a[i] = i + 1; }
          ptr p = a;
          int s = 0;
          for (int i = 0; i < 8; i++) {
            s = s + *p;
            p = p + 8;
          }
          return s;
        }|},
      "f", [], 36 );
    ( "word into bytes",
      {|int g;
        int f() {
          g = 0x0A0B0C0D;
          ptr p = &g;
          return *(int8*)p * 1000000 + *(int8*)(p + 1) * 10000
               + *(int8*)(p + 2) * 100 + *(int8*)(p + 3);
        }|},
      "f", [], (0x0D * 1000000) + (0x0C * 10000) + (0x0B * 100) + 0x0A );
    ( "mutual recursion with state",
      {|int depth;
        int pong(int n);
        int ping(int n) {
          depth = depth + 1;
          if (n == 0) { return depth; }
          return pong(n - 1);
        }
        int pong(int n) {
          depth = depth + 10;
          if (n == 0) { return depth; }
          return ping(n - 1);
        }|},
      "ping", [ 5 ], 33 );
    ( "function pointer table dispatch",
      {|int add1(int x) { return x + 1; }
        int dbl(int x) { return x * 2; }
        int sq(int x) { return x * x; }
        fnptr op = &add1;
        int f(int which, int x) {
          if (which == 0) { op = &add1; }
          if (which == 1) { op = &dbl; }
          if (which == 2) { op = &sq; }
          return op(x);
        }|},
      "f", [ 2; 9 ], 81 );
    ( "short-circuit with side effects",
      {|int calls;
        int check(int v) { calls = calls + 1; return v; }
        int f() {
          calls = 0;
          int a = check(1) || check(1);
          int b = check(0) && check(1);
          return calls * 10 + a + b;
        }|},
      "f", [], 21 );
    ( "shift-heavy hashing",
      {|int f(int x) {
          int h = x;
          h = h ^ (h >> 4);
          h = (h * 37) & 0xFFFF;
          h = h ^ (h << 3);
          return h & 0x7FFFFFFF;
        }|},
      "f", [ 12345 ],
      (let h = 12345 in
       let h = h lxor (h asr 4) in
       let h = h * 37 land 0xFFFF in
       let h = h lxor (h lsl 3) in
       h land 0x7FFFFFFF) );
    ( "negative division and modulo",
      "int f(int a, int b) { return (a / b) * 1000 + (a % b); }",
      "f", [ -17; 5 ], (-3 * 1000) + -2 );
    ( "do-while with break",
      {|int f(int n) {
          int i = 0;
          do {
            if (i >= n) { break; }
            i = i + 2;
          } while (1);
          return i;
        }|},
      "f", [ 7 ], 8 );
  ]

let make_case (name, src, fn, args, expected) =
  tc name (fun () ->
      check_int (name ^ " (interp)") expected (interp_run src fn args);
      check_int (name ^ " (interp, optimized)") expected
        (interp_run ~optimize:true src fn args);
      check_differential ~args (name ^ " (machine)") src fn)

let suite = List.map make_case cases
