(* Shared helpers for the test suites. *)

module Image = Mv_link.Image

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

(** Parse + typecheck, expecting success. *)
let check_ok src =
  let tu, env, warnings = Minic.Typecheck.check_string src in
  (tu, env, warnings)

(** Expect a typecheck (or parse/lex) failure; returns the message. *)
let check_fails src =
  match Minic.Typecheck.check_string src with
  | exception Minic.Typecheck.Error (m, _) -> m
  | exception Minic.Parser.Error (m, _) -> m
  | exception Minic.Lexer.Error (m, _) -> m
  | _ -> Alcotest.failf "expected a front-end error for:\n%s" src

(** Lower source to IR (typechecked). *)
let lower src =
  let prog, _warnings = Mv_ir.Lower.lower_string src in
  prog

(** Run a function in the reference IR interpreter. *)
let interp_run ?(optimize = false) src fn args =
  let prog = lower src in
  if optimize then Mv_opt.Pass.optimize_prog prog;
  let t = Mv_ir.Interp.create [ prog ] in
  Mv_ir.Interp.run t fn args

(** Full pipeline: build a program from one source. *)
let build src = Core.Compiler.build_string src

let build_units sources = Core.Compiler.build sources

(** A machine plus attached multiverse runtime for a built program. *)
type session = {
  program : Core.Compiler.program;
  machine : Mv_vm.Machine.t;
  runtime : Core.Runtime.t;
}

let session ?platform src =
  let program = build src in
  let machine = Mv_vm.Machine.create ?platform program.Core.Compiler.p_image in
  let runtime =
    Core.Runtime.create program.Core.Compiler.p_image ~flush:(fun ~addr ~len ->
        Mv_vm.Machine.flush_icache machine ~addr ~len)
  in
  { program; machine; runtime }

let session_units ?platform sources =
  let program = build_units sources in
  let machine = Mv_vm.Machine.create ?platform program.Core.Compiler.p_image in
  let runtime =
    Core.Runtime.create program.Core.Compiler.p_image ~flush:(fun ~addr ~len ->
        Mv_vm.Machine.flush_icache machine ~addr ~len)
  in
  { program; machine; runtime }

let run s fn args = Mv_vm.Machine.call s.machine fn args

let set_global s name v =
  let img = s.program.Core.Compiler.p_image in
  Image.write img (Image.symbol img name) v 8

let get_global s name =
  let img = s.program.Core.Compiler.p_image in
  Image.read img (Image.symbol img name) 8

(** Machine result must equal the IR interpreter result (differential). *)
let check_differential ?(args = []) name src fn =
  let expected = interp_run src fn args in
  let s = session src in
  let actual = run s fn args in
  check_int name expected actual
