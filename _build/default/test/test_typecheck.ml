(* Semantic-analysis tests: name resolution, arity, attribute rules, and
   the switch-write warning mandated by Section 3 of the paper. *)

open Util
module Ast = Minic.Ast
module Tc = Minic.Typecheck

let warnings src =
  let _, _, diags = check_ok src in
  List.map (fun (d : Tc.diagnostic) -> d.message) diags

let contains_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let check_error_mentions src needle =
  let msg = check_fails src in
  check_bool
    (Printf.sprintf "error %S mentions %S" msg needle)
    true (contains_substring msg needle)

(* ------------------------------------------------------------------ *)

let test_accepts_valid_programs () =
  let _ =
    check_ok
      {|
      enum mode { OFF, ON };
      multiverse enum mode cur;
      multiverse int flag;
      int buf[8];
      int helper(int a) { return a + 1; }
      multiverse int use(int n) {
        if (flag && cur == ON) { return helper(n); }
        return buf[n];
      }
    |}
  in
  ()

let test_undefined_names () =
  check_error_mentions "int f() { return nope; }" "undefined variable";
  check_error_mentions "int f() { return g(); }" "undefined function";
  check_error_mentions "int f() { return &nope; }" "undefined symbol";
  check_error_mentions "void f() { nope = 1; }" "undefined variable"

let test_duplicates () =
  check_error_mentions "int x; int x;" "duplicate global";
  check_error_mentions "void f() { } void f() { }" "duplicate function";
  check_error_mentions "enum a { X }; enum b { X };" "duplicate enum item";
  check_error_mentions "void f() { int x; int x; }" "duplicate local"

let test_extern_merging () =
  (* extern declaration + definition is fine, in either order *)
  let _ = check_ok "extern int x; int x = 1;" in
  let _ = check_ok "int x = 1; extern int x;" in
  let _ = check_ok "extern void f(); void f() { }" in
  check_error_mentions "extern int x; bool x;" "conflicting types";
  check_error_mentions "extern void f(int a); void f() { }" "conflicting arity"

let test_arity () =
  check_error_mentions "void g(int a) { } void f() { g(); }" "expects 1 argument";
  check_error_mentions "void g() { } void f() { g(1); }" "expects 0 argument";
  check_error_mentions "void f() { __atomic_xchg(1); }" "expects 2 argument";
  check_error_mentions "void f() { __cli(1); }" "expects 0 argument"

let test_attribute_rules () =
  check_error_mentions "multiverse ptr p;" "integer-like";
  check_error_mentions "multiverse int a[4];" "cannot apply to array";
  check_error_mentions "values(1) int x;" "requires multiverse";
  check_error_mentions "multiverse bind(x) int y;" "only valid on functions";
  check_error_mentions "int x; multiverse bind(x) void f() { }" "not a multiverse switch";
  check_error_mentions "multiverse bind(zz) void f() { }" "undefined global";
  check_error_mentions "bind(x) void f() { }" "requires multiverse";
  check_error_mentions "noinline int x;" "code-generation attribute";
  check_error_mentions "multiverse values(1) void f() { }" "only valid on variables"

let test_enum_rules () =
  check_error_mentions "enum nope_t x;" "undefined enum";
  check_error_mentions "enum e { A }; void f() { A = 1; }" "enum constant";
  (* enum constants fold to integers *)
  let _ = check_ok "enum e { A = 5 }; int f() { return A + 1; }" in
  ()

let test_return_rules () =
  check_error_mentions "void f() { return 1; }" "void function";
  check_error_mentions "int f() { return; }" "without a value"

let test_loop_rules () =
  check_error_mentions "void f() { break; }" "break outside";
  check_error_mentions "void f() { continue; }" "continue outside";
  let _ = check_ok "void f() { while (1) { break; } }" in
  let _ = check_ok "void f() { for (;;) { continue; } }" in
  ()

let test_fnptr_rules () =
  check_error_mentions "int g = &f;" "requires fnptr";
  check_error_mentions "fnptr g = &missing;" "undefined function";
  let _ = check_ok "void f() { } fnptr g = &f;" in
  (* calling through a fnptr global uses call syntax *)
  let _ = check_ok "void f() { } fnptr g = &f; void h() { g(); }" in
  check_error_mentions "int x; void h() { x(); }" "not a function"

let test_switch_write_warning () =
  let ws =
    warnings
      {|
      multiverse int flag;
      multiverse void f() {
        flag = 1;
      }
    |}
  in
  check_int "one warning" 1 (List.length ws);
  check_bool "mentions the switch" true
    (contains_substring (List.hd ws) "write to configuration switch flag");
  (* no warning outside multiversed functions *)
  let ws2 = warnings "multiverse int flag; void g() { flag = 1; }" in
  check_int "no warning in plain function" 0 (List.length ws2)

let test_local_shadowing () =
  (* an inner scope may shadow an outer local; a local may shadow a global *)
  let _ =
    check_ok
      {|
      int x;
      int f() {
        int x = 1;
        if (x) {
          int x = 2;
          return x;
        }
        return x;
      }
    |}
  in
  ()

let test_addr_resolution () =
  (* &name resolves to a function or rewrites to a global address *)
  let tu, _, _ =
    check_ok "int g; void f() { } int h() { return &f + &g; }"
  in
  let found = ref [] in
  let rec walk_expr (e : Ast.expr) =
    match e.edesc with
    | Ast.Eaddr_of_fun n -> found := ("fun", n) :: !found
    | Ast.Eaddr_of_var n -> found := ("var", n) :: !found
    | Ast.Ebinop (_, a, b) ->
        walk_expr a;
        walk_expr b
    | _ -> ()
  in
  List.iter
    (function
      | Ast.Dfunc { f_body = Some body; _ } ->
          List.iter
            (fun (s : Ast.stmt) ->
              match s.sdesc with
              | Ast.Sreturn (Some e) -> walk_expr e
              | _ -> ())
            body
      | _ -> ())
    tu;
  check_bool "resolved to fun and var" true
    (List.mem ("fun", "f") !found && List.mem ("var", "g") !found)

let suite =
  [
    tc "accepts valid programs" test_accepts_valid_programs;
    tc "undefined names" test_undefined_names;
    tc "duplicate definitions" test_duplicates;
    tc "extern merging" test_extern_merging;
    tc "arity checking" test_arity;
    tc "attribute rules" test_attribute_rules;
    tc "enum rules" test_enum_rules;
    tc "return rules" test_return_rules;
    tc "loop rules" test_loop_rules;
    tc "fnptr rules" test_fnptr_rules;
    tc "switch-write warning (Section 3)" test_switch_write_warning;
    tc "local shadowing" test_local_shadowing;
    tc "address-of resolution" test_addr_resolution;
  ]
