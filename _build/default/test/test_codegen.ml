(* Code-generation tests: the compiled machine code must agree with the
   reference IR interpreter (differential testing), the register allocator
   must survive high pressure (spilling), and the emitted call-site records
   must point at real call instructions. *)

open Util
module Ir = Mv_ir.Ir
module Insn = Mv_isa.Insn
module Emit = Mv_codegen.Emit
module Regalloc = Mv_codegen.Regalloc
module Image = Mv_link.Image

let check_diff ?(args = []) name src fn = check_differential ~args name src fn

let test_differential_basics () =
  check_diff "constant return" "int f() { return 42; }" "f";
  check_diff ~args:[ 5; 7 ] "parameters" "int f(int a, int b) { return a * 10 + b; }" "f";
  check_diff ~args:[ 9 ] "negation" "int f(int x) { return -x; }" "f";
  check_diff "void function" "int g; void f() { g = 3; } int h() { f(); return g; }" "h"

let test_differential_control_flow () =
  check_diff ~args:[ 10 ]
    "loop" "int f(int n) { int s = 0; for (int i = 0; i <= n; i++) { s += i; } return s; }" "f";
  check_diff ~args:[ 17 ] "branches"
    "int f(int x) { if (x > 10) { return 1; } else if (x > 5) { return 2; } return 3; }" "f";
  check_diff ~args:[ 6 ] "recursion"
    "int f(int n) { if (n <= 1) { return 1; } return n * f(n - 1); }" "f";
  check_diff ~args:[ 12 ] "short-circuit"
    "int f(int x) { return x > 10 && x < 20 || x == 0; }" "f"

let test_differential_memory () =
  check_diff "globals" "int a = 3; int b; int f() { b = a * 2; return a + b; }" "f";
  check_diff "arrays"
    "int t[16]; int f() { for (int i = 0; i < 16; i++) { t[i] = i * 3; } int s = 0; for (int i = 0; i < 16; i++) { s += t[i]; } return s; }"
    "f";
  check_diff "byte arrays"
    "uint8 t[8]; int f() { t[3] = 1000; return t[3]; }" "f";
  check_diff "pointers"
    "int t[4]; int f() { ptr p = t + 8; *p = 77; return t[1]; }" "f";
  check_diff "width stores"
    "int16 g; int f() { g = 70000; return g; }" "f"

let test_differential_calls () =
  check_diff "six arguments"
    "int g(int a, int b, int c, int d, int e, int f0) { return a + b * 2 + c * 3 + d * 4 + e * 5 + f0 * 6; } int f() { return g(1, 2, 3, 4, 5, 6); }"
    "f";
  check_diff "nested calls"
    "int inc(int x) { return x + 1; } int f() { return inc(inc(inc(0))); }" "f";
  check_diff "fnptr call"
    "int ten() { return 10; } fnptr op = &ten; int f() { return op(); }" "f"

let test_differential_intrinsics () =
  check_diff "atomic xchg"
    "int w; int f() { w = 3; int old = __atomic_xchg(&w, 8); return old * 10 + w; }" "f"

let test_register_pressure_spilling () =
  (* more than 12 simultaneously-live values forces spills *)
  let src =
    {|int f(int x) {
        int a = x + 1; int b = x + 2; int c = x + 3; int d = x + 4;
        int e = x + 5; int g = x + 6; int h = x + 7; int i = x + 8;
        int j = x + 9; int k = x + 10; int l = x + 11; int m = x + 12;
        int n = x + 13; int o = x + 14; int p = x + 15; int q = x + 16;
        return a + b + c + d + e + g + h + i + j + k + l + m + n + o + p + q;
      }|}
  in
  let prog = lower src in
  let f = List.hd prog.Ir.p_fns in
  let ra = Regalloc.allocate f in
  check_bool "spill slots allocated" true (ra.Regalloc.frame_slots > 0);
  check_diff ~args:[ 100 ] "spilled function still correct" src "f"

let test_spill_across_calls () =
  let src =
    {|int id(int x) { return x; }
      int f(int x) {
        int a = id(x + 1); int b = id(x + 2); int c = id(x + 3);
        int d = id(x + 4); int e = id(x + 5); int g = id(x + 6);
        int h = id(x + 7); int i = id(x + 8); int j = id(x + 9);
        return a + b * 2 + c * 3 + d * 4 + e * 5 + g * 6 + h * 7 + i * 8 + j * 9;
      }|}
  in
  check_diff ~args:[ 10 ] "values live across calls" src "f"

let test_callsite_records_point_at_calls () =
  let prog = lower "void g() { } void f() { g(); g(); }" in
  let f = List.find (fun (fn : Ir.fn) -> fn.fn_name = "f") prog.Ir.p_fns in
  let frag = Emit.emit_fn f in
  check_int "two call sites" 2 (List.length frag.Emit.fr_callsites);
  List.iter
    (fun (cs : Emit.callsite) ->
      let insn, _ = Mv_isa.Decode.decode frag.Emit.fr_code ~off:cs.cs_insn_offset in
      match insn with
      | Insn.Call _ -> ()
      | i -> Alcotest.failf "call-site offset holds %s" (Mv_isa.Asm.insn_to_string i))
    frag.Emit.fr_callsites

let test_indirect_callsite_records () =
  let prog = lower "void g() { } fnptr p = &g; void f() { p(); }" in
  let f = List.find (fun (fn : Ir.fn) -> fn.fn_name = "f") prog.Ir.p_fns in
  let frag = Emit.emit_fn f in
  match frag.Emit.fr_callsites with
  | [ cs ] ->
      check_bool "marked indirect" true cs.cs_indirect;
      check_string "callee is the pointer" "p" cs.cs_callee;
      let insn, _ = Mv_isa.Decode.decode frag.Emit.fr_code ~off:cs.cs_insn_offset in
      (match insn with
      | Insn.Call_ind _ -> ()
      | i -> Alcotest.failf "site holds %s" (Mv_isa.Asm.insn_to_string i))
  | l -> Alcotest.failf "expected one call site, got %d" (List.length l)

let test_saveall_convention () =
  let prog = lower "saveall void f() { __cli(); }" in
  let f = List.hd prog.Ir.p_fns in
  let frag = Emit.emit_fn f in
  let listing =
    Mv_isa.Decode.decode_range frag.Emit.fr_code ~off:0 ~len:(Bytes.length frag.Emit.fr_code)
  in
  let pushes =
    List.length (List.filter (fun (_, i) -> match i with Insn.Push _ -> true | _ -> false) listing)
  in
  let pops =
    List.length (List.filter (fun (_, i) -> match i with Insn.Pop _ -> true | _ -> false) listing)
  in
  check_bool "saves the scratch registers" true (pushes >= 5);
  check_int "balanced pops" pushes pops

let test_leaf_functions_avoid_saves () =
  let prog = lower "int f(int x) { int y = x * 2; return y + 1; }" in
  let f = List.hd prog.Ir.p_fns in
  let frag = Emit.emit_fn f in
  let listing =
    Mv_isa.Decode.decode_range frag.Emit.fr_code ~off:0 ~len:(Bytes.length frag.Emit.fr_code)
  in
  check_bool "no pushes in a leaf" true
    (List.for_all (fun (_, i) -> match i with Insn.Push _ -> false | _ -> true) listing)

let test_tiny_leaf_body_is_inlineable_shape () =
  (* the PV-Ops native backends must compile to [cli; ret] for the runtime
     inliner to fire (Section 6.1) *)
  let prog = lower "void native_cli() { __cli(); }" in
  let f = List.hd prog.Ir.p_fns in
  let frag = Emit.emit_fn f in
  check_int "two bytes" 2 (Bytes.length frag.Emit.fr_code);
  let listing = Mv_isa.Decode.decode_range frag.Emit.fr_code ~off:0 ~len:2 in
  check_bool "cli; ret" true
    (List.map snd listing = [ Insn.Cli; Insn.Ret ])

let test_too_many_params_rejected () =
  let prog = lower "int f(int a, int b, int c, int d, int e, int g, int h) { return a; }" in
  let f = List.hd prog.Ir.p_fns in
  match Emit.emit_fn f with
  | exception Emit.Error _ -> ()
  | _ -> Alcotest.fail "expected emit to reject 7 parameters"

let suite =
  [
    tc "differential: basics" test_differential_basics;
    tc "differential: control flow" test_differential_control_flow;
    tc "differential: memory" test_differential_memory;
    tc "differential: calls" test_differential_calls;
    tc "differential: intrinsics" test_differential_intrinsics;
    tc "register pressure forces spills" test_register_pressure_spilling;
    tc "spills across calls" test_spill_across_calls;
    tc "call-site records point at calls" test_callsite_records_point_at_calls;
    tc "indirect call-site records" test_indirect_callsite_records;
    tc "saveall calling convention" test_saveall_convention;
    tc "leaf functions avoid saves" test_leaf_functions_avoid_saves;
    tc "tiny leaf body shape (cli; ret)" test_tiny_leaf_body_is_inlineable_shape;
    tc "too many parameters rejected" test_too_many_params_rejected;
  ]
