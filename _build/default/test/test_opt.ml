(* Optimizer tests: these passes are what turn a constant-substituted clone
   into the branch-free specialized variant of Section 3. *)

open Util
module Ir = Mv_ir.Ir
module Pass = Mv_opt.Pass
module Merge = Mv_opt.Merge

let fn_named prog name =
  List.find (fun (f : Ir.fn) -> String.equal f.fn_name name) prog.Ir.p_fns

let optimized src name =
  let prog = lower src in
  Pass.optimize_prog prog;
  fn_named prog name

let count_instrs p (fn : Ir.fn) =
  List.fold_left
    (fun acc (b : Ir.block) -> acc + List.length (List.filter p b.b_instrs))
    0 fn.fn_blocks

let count_blocks (fn : Ir.fn) = List.length fn.fn_blocks

let has_branch (fn : Ir.fn) =
  List.exists
    (fun (b : Ir.block) -> match b.b_term with Ir.Tbr _ -> true | _ -> false)
    fn.fn_blocks

(* semantic preservation helper: optimized program behaves identically *)
let check_preserves name src fn args =
  let expected = interp_run src fn args in
  let actual = interp_run ~optimize:true src fn args in
  check_int name expected actual

(* ------------------------------------------------------------------ *)

let test_constant_folding () =
  let f = optimized "int f() { return 2 + 3 * 4; }" "f" in
  check_int "no ALU instructions remain"
    0
    (count_instrs (function Ir.Ibin _ | Ir.Iun _ -> true | _ -> false) f);
  check_preserves "folded value" "int f() { return 2 + 3 * 4; }" "f" []

let test_folding_respects_division_by_zero () =
  (* 1/0 must fold to nothing — the trap has to survive to run time *)
  let f = optimized "int f() { return 1 / 0; }" "f" in
  check_int "division retained"
    1
    (count_instrs (function Ir.Ibin (Ir.Div, _, _, _) -> true | _ -> false) f)

let test_algebraic_identities () =
  List.iter
    (fun (src, expected) ->
      let full = Printf.sprintf "int f(int x) { return %s; }" src in
      check_int (src ^ " value") expected (interp_run ~optimize:true full "f" [ 7 ]);
      let f = optimized full "f" in
      check_int (src ^ " simplified away") 0
        (count_instrs (function Ir.Ibin _ -> true | _ -> false) f))
    [
      ("x + 0", 7); ("0 + x", 7); ("x - 0", 7); ("x * 1", 7); ("1 * x", 7);
      ("x * 0", 0); ("0 * x", 0); ("x / 1", 7); ("x & 0", 0); ("x | 0", 7);
      ("x ^ 0", 7); ("x << 0", 7); ("x >> 0", 7);
    ]

let test_copy_propagation () =
  let f = optimized "int f(int x) { int y = x; int z = y; return z; }" "f" in
  check_int "copies eliminated" 0
    (count_instrs (function Ir.Imov _ -> true | _ -> false) f)

let test_branch_folding_true () =
  let f = optimized "int f() { if (1) { return 10; } return 20; }" "f" in
  check_bool "no conditional branch" false (has_branch f);
  check_preserves "value" "int f() { if (1) { return 10; } return 20; }" "f" []

let test_branch_folding_false () =
  let f = optimized "int f() { if (0) { return 10; } return 20; }" "f" in
  check_bool "no conditional branch" false (has_branch f);
  check_int "single block remains" 1 (count_blocks f)

let test_dead_branch_code_removed () =
  (* the call inside the dead branch must disappear entirely *)
  let src =
    "int g() { return 1; } int f() { if (0) { return g(); } return 2; }"
  in
  let f = optimized src "f" in
  check_int "dead call removed" 0
    (count_instrs (function Ir.Icall _ -> true | _ -> false) f)

let test_dce_keeps_side_effects () =
  let src = "int g; int f() { g = 1; int dead = 2 + 3; return 0; }" in
  let f = optimized src "f" in
  check_int "store kept" 1
    (count_instrs (function Ir.Istoreg _ -> true | _ -> false) f);
  check_int "dead arithmetic removed" 0
    (count_instrs (function Ir.Ibin _ | Ir.Imov _ -> true | _ -> false) f)

let test_dce_keeps_calls_with_dead_results () =
  let src = "int hits; int g() { hits = hits + 1; return 7; } int f() { int dead = g(); return 0; }" in
  let f = optimized src "f" in
  check_int "call kept" 1 (count_instrs (function Ir.Icall _ -> true | _ -> false) f);
  (* ... but its destination register is dropped *)
  check_int "result dropped" 1
    (count_instrs (function Ir.Icall (None, _, _) -> true | _ -> false) f);
  check_int "side effect observed" 1
    (let prog = lower src in
     Pass.optimize_prog prog;
     let t = Mv_ir.Interp.create [ prog ] in
     let _ = Mv_ir.Interp.run t "f" [] in
     Mv_ir.Interp.read_global t "hits")

let test_dce_liveness_across_loop () =
  (* x is defined before the loop and used inside it on every iteration;
     DCE must not remove the definition *)
  let src =
    {|int f(int n) {
        int x = 5;
        int s = 0;
        for (int i = 0; i < n; i++) { s = s + x; }
        return s;
      }|}
  in
  check_preserves "loop-carried liveness" src "f" [ 4 ]

let test_cfg_simplification_block_count () =
  (* a diamond with constant condition collapses into a straight line *)
  let src = "int f(int x) { int r; if (1) { r = x + 1; } else { r = x + 2; } return r; }" in
  let f = optimized src "f" in
  check_int "collapsed to one block" 1 (count_blocks f);
  check_preserves "value" src "f" [ 10 ]

let test_specialization_pipeline () =
  (* the exact transformation variant generation performs: substitute the
     switch read, then optimize — the function becomes branch-free *)
  let src =
    {|multiverse int config;
      int work;
      multiverse void f() {
        if (config) {
          work = work + 1;
        }
      }|}
  in
  let prog = lower src in
  let f = fn_named prog "f" in
  let clone = Ir.copy_fn f in
  (* bind config = 0 *)
  List.iter
    (fun (b : Ir.block) ->
      b.Ir.b_instrs <-
        List.map
          (function
            | Ir.Iloadg (d, "config", _) -> Ir.Imov (d, Ir.Imm 0)
            | i -> i)
          b.Ir.b_instrs)
    clone.Ir.fn_blocks;
  Pass.optimize_fn clone;
  check_bool "specialized clone is branch-free" false (has_branch clone);
  check_int "specialized clone is empty" 0
    (count_instrs (fun _ -> true) clone);
  (* the original is untouched *)
  check_bool "generic still branches" true (has_branch f)

(* ------------------------------------------------------------------ *)
(* Structural merging                                                  *)
(* ------------------------------------------------------------------ *)

let test_merge_equal_bodies () =
  let prog =
    lower
      {|int f(int x) { int a = x + 1; return a * 2; }
        int g(int y) { int b = y + 1; return b * 2; }|}
  in
  Pass.optimize_prog prog;
  let f = fn_named prog "f" and g = fn_named prog "g" in
  check_bool "identical up to renaming" true (Merge.equal_bodies f g)

let test_merge_distinguishes_constants () =
  let prog = lower "int f(int x) { return x + 1; } int g(int x) { return x + 2; }" in
  let f = fn_named prog "f" and g = fn_named prog "g" in
  check_bool "different constants differ" false (Merge.equal_bodies f g)

let test_merge_distinguishes_symbols () =
  let prog =
    lower "int a; int b; int f() { return a; } int g() { return b; }"
  in
  let f = fn_named prog "f" and g = fn_named prog "g" in
  check_bool "different globals differ" false (Merge.equal_bodies f g)

let test_merge_block_order_insensitive () =
  (* same CFG reached through different block id numbering *)
  let src1 = "int f(int x) { if (x) { return 1; } return 2; }" in
  let src2 = "int g(int x) { if (x) { return 1; } return 2; }" in
  let p1 = lower (src1 ^ src2) in
  Pass.optimize_prog p1;
  let f = fn_named p1 "f" and g = fn_named p1 "g" in
  check_bool "same shape merges" true (Merge.equal_bodies f g)

let test_optimizer_terminates () =
  (* a pathological but legal function: the fixpoint must stop *)
  let src =
    {|int f(int x) {
        int a = x;
        for (int i = 0; i < 100; i++) {
          a = a * 1 + 0;
          if (0) { a = a / 0; }
        }
        return a;
      }|}
  in
  check_preserves "pathological function" src "f" [ 3 ]

let test_semantic_preservation_battery () =
  List.iter
    (fun (src, fn, args) -> check_preserves (fn ^ " preserved") src fn args)
    [
      ("int f(int n) { int s = 0; while (n) { s += n; n = n - 1; } return s; }", "f", [ 7 ]);
      ("int f(int a, int b) { return (a < b ? a : b) * 2; }", "f", [ 3; 9 ]);
      ("int f(int x) { return x && (x > 2) || !x; }", "f", [ 1 ]);
      ("int g(int n) { return n * n; } int f(int n) { return g(n) + g(n + 1); }", "f", [ 5 ]);
      ("int a[4]; int f(int i) { a[i] = i; return a[i]; }", "f", [ 2 ]);
    ]

let suite =
  [
    tc "constant folding" test_constant_folding;
    tc "folding preserves division by zero" test_folding_respects_division_by_zero;
    tc "algebraic identities" test_algebraic_identities;
    tc "copy propagation" test_copy_propagation;
    tc "branch folding (true)" test_branch_folding_true;
    tc "branch folding (false)" test_branch_folding_false;
    tc "dead branch code removed" test_dead_branch_code_removed;
    tc "DCE keeps side effects" test_dce_keeps_side_effects;
    tc "DCE keeps calls, drops dead results" test_dce_keeps_calls_with_dead_results;
    tc "DCE respects loop liveness" test_dce_liveness_across_loop;
    tc "CFG simplification" test_cfg_simplification_block_count;
    tc "specialization pipeline (Section 3)" test_specialization_pipeline;
    tc "merge: equal bodies" test_merge_equal_bodies;
    tc "merge: constants distinguish" test_merge_distinguishes_constants;
    tc "merge: symbols distinguish" test_merge_distinguishes_symbols;
    tc "merge: block-order insensitive" test_merge_block_order_insensitive;
    tc "optimizer terminates" test_optimizer_terminates;
    tc "semantic preservation battery" test_semantic_preservation_battery;
  ]
