(* Tests for the two Section 7.1 extensions implemented beyond the paper's
   base system:
   - padded call sites (wider inlining budget),
   - the body-patching installation strategy with its body relocator. *)

open Util
module Runtime = Core.Runtime
module Patch = Core.Patch
module Image = Mv_link.Image
module Insn = Mv_isa.Insn

let fig2 =
  {|
  multiverse bool a;
  multiverse int b;
  int w;
  void side() { w = w + 1; }
  multiverse void multi() {
    if (a) {
      side();
      if (b) { side(); }
    }
  }
  int foo() { w = 0; multi(); return w; }
|}

let padded_session ?(padding = 8) src =
  let program = Core.Compiler.build ~callsite_padding:padding [ ("main", src) ] in
  let machine = Mv_vm.Machine.create program.Core.Compiler.p_image in
  let runtime =
    Core.Runtime.create program.Core.Compiler.p_image ~flush:(fun ~addr ~len ->
        Mv_vm.Machine.flush_icache machine ~addr ~len)
  in
  ({ program; machine; runtime } : session)

(* ------------------------------------------------------------------ *)
(* Padded call sites                                                   *)
(* ------------------------------------------------------------------ *)

let test_padding_emits_nops () =
  let plain = build fig2 in
  let padded = (padded_session fig2).program in
  let size p = Image.symbol_size p.Core.Compiler.p_image "foo" in
  check_int "foo grows by the pad" (size plain + 8) (size padded)

let test_padded_semantics_all_assignments () =
  let s = padded_session fig2 in
  List.iter
    (fun (a, b) ->
      set_global s "a" a;
      set_global s "b" b;
      ignore (Runtime.commit s.runtime);
      let expected = (if a = 1 then 1 else 0) + if a = 1 && b = 1 then 1 else 0 in
      check_int (Printf.sprintf "padded A=%d B=%d" a b) expected (run s "foo" []))
    [ (0, 0); (1, 0); (1, 1); (0, 1); (0, 0) ]

let test_padding_widens_inlining () =
  (* a variant body of 7-8 bytes: too big for a bare 5-byte site, inlineable
     into a padded 13-byte site *)
  let src =
    {|
    multiverse int m;
    int w;
    multiverse void f() {
      if (m) {
        w = 1;
      }
    }
    int foo() { w = 0; f(); return w; }
  |}
  in
  (* m=1 variant body: storeg w, 1 requires a mov + storeg > 5 bytes *)
  let bare = session src in
  set_global bare "m" 1;
  ignore (Runtime.commit bare.runtime);
  let bare_stats = Runtime.stats bare.runtime in
  check_int "bare site cannot inline" 0 bare_stats.Runtime.st_sites_inlined;
  let padded = padded_session ~padding:10 src in
  set_global padded "m" 1;
  ignore (Runtime.commit padded.runtime);
  let padded_stats = Runtime.stats padded.runtime in
  check_int "padded site inlines" 1 padded_stats.Runtime.st_sites_inlined;
  check_int "padded result" 1 (run padded "foo" []);
  (* and revert restores the padded site byte-for-byte *)
  let img = padded.program.Core.Compiler.p_image in
  let text = img.Image.text in
  ignore (Runtime.revert padded.runtime);
  set_global padded "m" 0;
  check_int "reverted dynamic" 0 (run padded "foo" []);
  ignore text

let test_padding_rejects_out_of_range () =
  match Core.Compiler.build ~callsite_padding:25 [ ("m", fig2) ] with
  | exception Core.Compiler.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected padding validation to reject 25"

let test_adjacent_sites_not_confused () =
  (* two back-to-back call sites: the second call is not nop padding of the
     first, so sizes must stay at 5 bytes each *)
  let src =
    {|
    multiverse int m;
    int w;
    multiverse void f() { if (m) { w = w + 1; } }
    int foo() { w = 0; f(); f(); return w; }
  |}
  in
  let s = session src in
  set_global s "m" 1;
  ignore (Runtime.commit s.runtime);
  check_int "both sites live" 2 (run s "foo" []);
  ignore (Runtime.revert s.runtime);
  set_global s "m" 0;
  check_int "revert intact" 0 (run s "foo" [])

(* ------------------------------------------------------------------ *)
(* Body patching                                                       *)
(* ------------------------------------------------------------------ *)

let test_body_patching_semantics () =
  let s = session fig2 in
  Runtime.set_strategy s.runtime Runtime.Body_patching;
  List.iter
    (fun (a, b) ->
      set_global s "a" a;
      set_global s "b" b;
      ignore (Runtime.commit s.runtime);
      let expected = (if a = 1 then 1 else 0) + if a = 1 && b = 1 then 1 else 0 in
      check_int (Printf.sprintf "body-patched A=%d B=%d" a b) expected (run s "foo" []))
    [ (0, 0); (1, 0); (1, 1); (0, 1); (1, 1); (0, 0) ]

let test_body_patching_leaves_call_sites_alone () =
  let s = session fig2 in
  let img = s.program.Core.Compiler.p_image in
  Runtime.set_strategy s.runtime Runtime.Body_patching;
  let sites = Core.Descriptor.parse_callsites img in
  let site = (List.hd sites).Core.Descriptor.cs_site in
  let before = Image.read_bytes img site 5 in
  set_global s "a" 1;
  set_global s "b" 1;
  ignore (Runtime.commit s.runtime);
  check_bool "call site untouched" true (Bytes.equal before (Image.read_bytes img site 5));
  let stats = Runtime.stats s.runtime in
  check_int "no site retargeted" 0 stats.Runtime.st_sites_retargeted;
  check_int "no site inlined" 0 stats.Runtime.st_sites_inlined

let test_body_patching_revert_restores_text () =
  let s = session fig2 in
  let img = s.program.Core.Compiler.p_image in
  let text = img.Image.text in
  let snapshot () = Bytes.sub img.Image.mem text.Image.sr_base text.Image.sr_size in
  Runtime.set_strategy s.runtime Runtime.Body_patching;
  let before = snapshot () in
  set_global s "a" 1;
  set_global s "b" 1;
  ignore (Runtime.commit s.runtime);
  check_bool "commit changed the text" false (Bytes.equal before (snapshot ()));
  ignore (Runtime.revert s.runtime);
  check_bool "revert restored the text" true (Bytes.equal before (snapshot ()))

let test_body_patching_function_pointers_covered () =
  (* overwriting the generic body means function pointers are covered for
     free — no prologue jump needed for fitting variants *)
  let src =
    fig2
    ^ {|
    fnptr indirect = &multi;
    int via_pointer() {
      w = 0;
      indirect();
      return w;
    }
  |}
  in
  let s = session src in
  Runtime.set_strategy s.runtime Runtime.Body_patching;
  set_global s "a" 1;
  set_global s "b" 1;
  ignore (Runtime.commit s.runtime);
  set_global s "a" 0;
  check_int "pointer call sees the installed variant" 2 (run s "via_pointer" [])

let test_strategy_switch_requires_revert () =
  let s = session fig2 in
  set_global s "a" 1;
  set_global s "b" 1;
  ignore (Runtime.commit s.runtime);
  (match Runtime.set_strategy s.runtime Runtime.Body_patching with
  | exception Runtime.Runtime_error _ -> ()
  | () -> Alcotest.fail "must refuse to switch strategy while installed");
  ignore (Runtime.revert s.runtime);
  Runtime.set_strategy s.runtime Runtime.Body_patching;
  ignore (Runtime.commit s.runtime);
  check_int "works after revert" 2 (run s "foo" [])

let test_relocate_body_rebiasing () =
  (* relocate a body containing an external call and an intra-body branch:
     executing the relocated copy must behave identically *)
  let src =
    {|
    int w;
    void ext() { w = w + 100; }
    int body(int n) {
      if (n > 0) {
        ext();
        return n + 1;
      }
      return -1;
    }
  |}
  in
  let s = session src in
  let img = s.program.Core.Compiler.p_image in
  let patch =
    Patch.create img ~flush:(fun ~addr ~len ->
        Mv_vm.Machine.flush_icache s.machine ~addr ~len)
  in
  let src_addr = Image.symbol img "body" in
  let len = Image.symbol_size img "body" in
  (* destination: a fresh page-aligned spot in the text segment? use the
     heap region, made executable *)
  let dst = img.Image.heap_base in
  let relocated = Patch.relocate_body patch ~src:src_addr ~len ~dst in
  Image.mprotect img ~addr:dst ~len Image.prot_rwx;
  Image.write_bytes img dst relocated;
  Image.mprotect img ~addr:dst ~len Image.prot_rx;
  (* the machine only fetches inside the text segment, so execute the
     original and compare the relocated bytes structurally instead *)
  let orig_listing = Mv_isa.Decode.decode_range img.Image.mem ~off:src_addr ~len in
  let new_listing = Mv_isa.Decode.decode_range img.Image.mem ~off:dst ~len in
  check_int "same instruction count" (List.length orig_listing) (List.length new_listing);
  List.iter2
    (fun (opos, oi) (npos, ni) ->
      match oi, ni with
      | Insn.Call orel, Insn.Call nrel ->
          check_int "external call target preserved" (opos + 5 + orel) (npos + 5 + nrel)
      | Insn.Jnz (_, orel), Insn.Jnz (_, nrel) | Insn.Jz (_, orel), Insn.Jz (_, nrel) ->
          (* intra-body: displacement unchanged *)
          check_int "intra-body branch displacement" orel nrel
      | a, b -> check_bool "other instructions identical" true (a = b))
    orig_listing new_listing

let test_body_patching_commit_is_cheaper () =
  (* with many call sites, body patching performs far fewer patches *)
  let src = Mv_workloads.Callsite_farm.source ~callers:20 ~pairs:5 in
  let patches strategy =
    let s = session src in
    Runtime.set_strategy s.runtime strategy;
    set_global s "config_smp" 1;
    ignore (Runtime.commit s.runtime);
    (Runtime.stats s.runtime).Runtime.st_patches
  in
  let call_site = patches Runtime.Call_site_patching in
  let body = patches Runtime.Body_patching in
  check_bool
    (Printf.sprintf "body patching patches far less (%d vs %d)" body call_site)
    true
    (body * 10 < call_site)

let suite =
  [
    tc "padding emits nops" test_padding_emits_nops;
    tc "padded sites: semantics preserved" test_padded_semantics_all_assignments;
    tc "padding widens the inlining budget" test_padding_widens_inlining;
    tc "padding range validated" test_padding_rejects_out_of_range;
    tc "adjacent sites not mistaken for padding" test_adjacent_sites_not_confused;
    tc "body patching: semantics" test_body_patching_semantics;
    tc "body patching: call sites untouched" test_body_patching_leaves_call_sites_alone;
    tc "body patching: revert restores text" test_body_patching_revert_restores_text;
    tc "body patching: pointers covered for free" test_body_patching_function_pointers_covered;
    tc "strategy switch requires revert" test_strategy_switch_requires_revert;
    tc "relocate_body re-biases external targets" test_relocate_body_rebiasing;
    tc "body patching needs far fewer patches" test_body_patching_commit_is_cheaper;
  ]
