(* Runtime deep tests beyond the e2e suite: site verification (skipping
   sites another mechanism owns), protection discipline during patching,
   inline toggling, fn-pointer switches, and runtime statistics. *)

open Util
module Runtime = Core.Runtime
module Patch = Core.Patch
module Image = Mv_link.Image
module Insn = Mv_isa.Insn

let fig2 =
  {|
  multiverse bool a;
  multiverse int b;
  int w;
  void side() { w = w + 1; }
  multiverse void multi() {
    if (a) {
      side();
      if (b) { side(); }
    }
  }
  int foo() { w = 0; multi(); return w; }
|}

let test_protection_restored_after_commit () =
  let s = session fig2 in
  let img = s.program.Core.Compiler.p_image in
  set_global s "a" 1;
  set_global s "b" 1;
  ignore (Runtime.commit s.runtime);
  (* every text page must be back to read+execute, not writable *)
  let text = img.Image.text in
  let first = text.Image.sr_base / Image.page_size in
  let last = (text.Image.sr_base + text.Image.sr_size - 1) / Image.page_size in
  for page = first to last do
    let p = img.Image.prot.(page) in
    check_bool "page not writable" false p.Image.p_write;
    check_bool "page executable" true p.Image.p_exec
  done

let test_patching_without_mprotect_faults () =
  (* the Patch module must fail loudly if asked to write without opening a
     window; write_text opens one itself, so poke the image directly *)
  let s = session fig2 in
  let img = s.program.Core.Compiler.p_image in
  let multi = Image.symbol img "multi" in
  match Image.write img multi 0x90 1 with
  | exception Image.Segfault _ -> ()
  | () -> Alcotest.fail "raw text write must segfault"

let test_icache_flushed_after_commit () =
  (* run once to warm the decode cache, then commit and re-run: the machine
     must see the patched code (i.e. the runtime flushed) *)
  let s = session fig2 in
  set_global s "a" 1;
  set_global s "b" 1;
  check_int "warm" 2 (run s "foo" []);
  ignore (Runtime.commit s.runtime);
  set_global s "a" 0;  (* committed binding must stick *)
  check_int "patched code executes" 2 (run s "foo" []);
  check_bool "icache flushes happened" true
    (s.machine.Mv_vm.Machine.perf.Mv_vm.Perf.icache_flushes > 0)

let test_site_verification_skips_foreign_bytes () =
  (* clobber the call site with something the runtime did not write; commit
     must skip it (and report), not corrupt it further *)
  let s = session fig2 in
  let img = s.program.Core.Compiler.p_image in
  let sites = Core.Descriptor.parse_callsites img in
  let site = (List.hd sites).Core.Descriptor.cs_site in
  (* a foreign mechanism (say, a tracer) rewrote the call site *)
  Image.mprotect img ~addr:site ~len:5 Image.prot_rwx;
  Image.write_bytes img site (Mv_isa.Encode.encode (Insn.Jmp 0));
  Image.mprotect img ~addr:site ~len:5 Image.prot_rx;
  let foreign = Image.read_bytes img site 5 in
  set_global s "a" 1;
  set_global s "b" 0;
  ignore (Runtime.commit s.runtime);
  check_bool "site skipped and reported" true
    (List.exists (fun (addr, _) -> addr = site) (Runtime.skipped_sites s.runtime));
  check_bool "foreign bytes untouched" true
    (Bytes.equal foreign (Image.read_bytes img site 5));
  (* the prologue jump still redirects the function, so semantics hold *)
  ignore (Runtime.revert s.runtime)

let test_inline_toggle () =
  let s = session fig2 in
  set_global s "a" 0;
  set_global s "b" 0;
  Runtime.set_inlining s.runtime false;
  ignore (Runtime.commit s.runtime);
  let stats = Runtime.stats s.runtime in
  check_int "nothing inlined" 0 stats.Runtime.st_sites_inlined;
  check_int "site retargeted instead" 1 stats.Runtime.st_sites_retargeted;
  check_int "still correct" 0 (run s "foo" []);
  Runtime.set_inlining s.runtime true;
  ignore (Runtime.revert s.runtime);
  ignore (Runtime.commit s.runtime);
  let stats = Runtime.stats s.runtime in
  check_int "inlined when enabled" 1 stats.Runtime.st_sites_inlined

let test_commit_returns_bound_count () =
  let s = session fig2 in
  set_global s "a" 1;
  set_global s "b" 1;
  check_int "commit binds one entity" 1 (Runtime.commit s.runtime);
  check_int "revert reports entities" 1 (Runtime.revert s.runtime);
  check_int "unknown function" (-1) (Runtime.commit_func s.runtime "nonexistent");
  check_int "unknown variable" (-1) (Runtime.commit_refs s.runtime "nonexistent")

let test_fnptr_commit_and_retarget () =
  let src =
    {|
    int mode_a() { return 1; }
    int mode_b() { return 2; }
    multiverse fnptr handler = &mode_a;
    int dispatch() { return handler(); }
  |}
  in
  let s = session src in
  let img = s.program.Core.Compiler.p_image in
  check_int "indirect before commit" 1 (run s "dispatch" []);
  ignore (Runtime.commit s.runtime);
  check_int "direct after commit" 1 (run s "dispatch" []);
  (* the site is now a direct call (or inlined body), not Call_ind *)
  let sites = Core.Descriptor.parse_callsites img in
  let site = (List.hd sites).Core.Descriptor.cs_site in
  let insn, _ = Mv_isa.Decode.decode img.Image.mem ~off:site in
  check_bool "no longer indirect" true
    (match insn with Insn.Call_ind _ -> false | _ -> true);
  (* rebinding the pointer and re-committing retargets *)
  Image.write img (Image.symbol img "handler") (Image.symbol img "mode_b") 8;
  ignore (Runtime.commit s.runtime);
  check_int "retargeted" 2 (run s "dispatch" []);
  (* revert restores the original indirect call, which follows the pointer *)
  ignore (Runtime.revert s.runtime);
  check_int "indirect again, current pointer" 2 (run s "dispatch" []);
  Image.write img (Image.symbol img "handler") (Image.symbol img "mode_a") 8;
  check_int "dynamic dispatch follows writes again" 1 (run s "dispatch" [])

let test_fnptr_null_falls_back () =
  let src =
    {|
    int mode_a() { return 1; }
    multiverse fnptr handler = &mode_a;
    int dispatch() { return handler(); }
  |}
  in
  let s = session src in
  let img = s.program.Core.Compiler.p_image in
  Image.write img (Image.symbol img "handler") 0 8;
  ignore (Runtime.commit s.runtime);
  check_bool "null pointer signalled" true (Runtime.fallbacks s.runtime <> [])

let test_commit_with_many_functions () =
  (* a larger program: every function must bind independently *)
  let src =
    {|
    multiverse int m;
    int w;
    multiverse void f0() { if (m) { w = w + 1; } }
    multiverse void f1() { if (m) { w = w + 2; } }
    multiverse void f2() { if (m) { w = w + 4; } }
    multiverse void f3() { if (m) { w = w + 8; } }
    int all() { w = 0; f0(); f1(); f2(); f3(); return w; }
  |}
  in
  let s = session src in
  set_global s "m" 1;
  check_int "four bound" 4 (Runtime.commit s.runtime);
  check_int "all run" 15 (run s "all" []);
  set_global s "m" 0;
  check_int "still bound to 1" 15 (run s "all" []);
  check_int "rebind" 4 (Runtime.commit s.runtime);
  check_int "all elided" 0 (run s "all" [])

let test_stats_shape () =
  let s = session fig2 in
  let st0 = Runtime.stats s.runtime in
  check_int "functions" 1 st0.Runtime.st_functions;
  check_int "variants" 3 st0.Runtime.st_variants;
  check_int "callsites" 1 st0.Runtime.st_callsites;
  check_int "nothing patched yet" 0 st0.Runtime.st_patches;
  set_global s "a" 1;
  set_global s "b" 1;
  ignore (Runtime.commit s.runtime);
  let st1 = Runtime.stats s.runtime in
  check_bool "patches recorded" true (st1.Runtime.st_patches > 0);
  check_bool "bytes recorded" true (st1.Runtime.st_bytes_patched > 0)

let test_patch_module_verification () =
  (* Patch.retarget_call must verify the expected current target *)
  let s = session fig2 in
  let img = s.program.Core.Compiler.p_image in
  let patch =
    Patch.create img ~flush:(fun ~addr ~len ->
        Mv_vm.Machine.flush_icache s.machine ~addr ~len)
  in
  let sites = Core.Descriptor.parse_callsites img in
  let site = (List.hd sites).Core.Descriptor.cs_site in
  let multi = Image.symbol img "multi" in
  let side = Image.symbol img "side" in
  (* wrong expectation -> refused *)
  (match Patch.retarget_call patch ~site ~expect:[ side ] ~target:side with
  | exception Patch.Patch_error _ -> ()
  | () -> Alcotest.fail "verification must reject a wrong expected target");
  (* right expectation -> patched *)
  Patch.retarget_call patch ~site ~expect:[ multi ] ~target:side;
  check_int "target rewritten" side (Patch.current_call_target patch ~addr:site)

let test_inlineable_body_detection () =
  let s = session "void tiny() { __cli(); } int w; void big() { w = 1; w = 2; }" in
  let img = s.program.Core.Compiler.p_image in
  let patch = Patch.create img ~flush:(fun ~addr:_ ~len:_ -> ()) in
  let tiny = Image.symbol img "tiny" in
  (match
     Patch.inlineable_body patch ~fn_addr:tiny ~fn_size:(Image.symbol_size img "tiny")
       ~budget:5
   with
  | Some body -> check_int "cli body is 1 byte" 1 (Bytes.length body)
  | None -> Alcotest.fail "cli body must be inlineable");
  let big = Image.symbol img "big" in
  match
    Patch.inlineable_body patch ~fn_addr:big ~fn_size:(Image.symbol_size img "big")
      ~budget:5
  with
  | None -> ()
  | Some _ -> Alcotest.fail "a 2-store body must not fit a 5-byte site"

let suite =
  [
    tc "protection restored after commit (W^X)" test_protection_restored_after_commit;
    tc "raw text writes fault" test_patching_without_mprotect_faults;
    tc "icache flushed by the runtime" test_icache_flushed_after_commit;
    tc "site verification skips foreign bytes" test_site_verification_skips_foreign_bytes;
    tc "inlining can be toggled" test_inline_toggle;
    tc "API return values" test_commit_returns_bound_count;
    tc "fnptr commit, retarget, revert" test_fnptr_commit_and_retarget;
    tc "null fnptr falls back" test_fnptr_null_falls_back;
    tc "many functions bind independently" test_commit_with_many_functions;
    tc "runtime statistics" test_stats_shape;
    tc "Patch.retarget_call verification" test_patch_module_verification;
    tc "inlineable body detection" test_inlineable_body_detection;
  ]
