(* Disassembler tests: formatting, pc-relative target annotation, symbol
   resolution, and graceful handling of patched-over residue. *)

open Util
module Insn = Mv_isa.Insn
module Asm = Mv_isa.Asm
module Encode = Mv_isa.Encode

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_insn_formats () =
  List.iter
    (fun (insn, expected) -> check_string expected expected (Asm.insn_to_string insn))
    [
      (Insn.Mov_ri (3, 42), "mov r3, $42");
      (Insn.Mov_ri32 (3, -1), "mov32 r3, $-1");
      (Insn.Alu (Insn.Add, 1, 2, 3), "add r1, r2, r3");
      (Insn.Alu_ri (Insn.Shl, 0, 0, 4), "shl r0, r0, $4");
      (Insn.Load (1, 15, 16, 8), "ld64 r1, [r15+16]");
      (Insn.Store (15, -8, 2, 4), "st32 [r15-8], r2");
      (Insn.Loadg (0, 0x2000, 1), "ld8 r0, [0x2000]");
      (Insn.Call 10, "call +10");
      (Insn.Call_ind 0x2000, "call [0x2000]");
      (Insn.Jnz (3, -14), "jnz r3, -14");
      (Insn.Xchg (0, 1, 2), "xchg r0, [r1], r2");
      (Insn.Cli, "cli");
      (Insn.Nop, "nop");
    ]

let test_disassemble_annotates_targets () =
  let seq = [ Insn.Call 11; Insn.Jmp (-10); Insn.Ret ] in
  let bytes, _ = Encode.encode_seq seq in
  let listing = Asm.disassemble bytes ~off:0 ~len:(Bytes.length bytes) in
  (* call at 0, size 5, rel 11 -> target 16 *)
  check_bool "call target annotated" true (contains listing "-> 0x10");
  (* jmp at 5, size 5, rel -10 -> target 0 *)
  check_bool "jmp target annotated" true (contains listing "-> 0x0")

let test_disassemble_resolves_symbols () =
  let seq = [ Insn.Call 11; Insn.Ret ] in
  let bytes, _ = Encode.encode_seq seq in
  let resolve addr = if addr = 16 then Some "spin_irq_lock" else None in
  let listing = Asm.disassemble ~resolve bytes ~off:0 ~len:(Bytes.length bytes) in
  check_bool "symbol name shown" true (contains listing "<spin_irq_lock>")

let test_disassemble_stops_on_garbage () =
  let bytes = Bytes.cat (Encode.encode Insn.Cli) (Bytes.of_string "\xff\xff") in
  let listing = Asm.disassemble bytes ~off:0 ~len:(Bytes.length bytes) in
  check_bool "valid prefix listed" true (contains listing "cli");
  check_bool "residue marked" true (contains listing "undecodable")

let test_disassemble_patched_function () =
  (* end to end: a committed function's prologue shows the jmp and the
     residue marker instead of crashing *)
  let s =
    session
      {|multiverse int m;
        int w;
        multiverse void f() { if (m) { w = w + 1; } w = w + 2; }
        void c() { f(); }|}
  in
  set_global s "m" 1;
  ignore (Core.Runtime.commit s.runtime);
  let img = s.program.Core.Compiler.p_image in
  let f = Mv_link.Image.symbol img "f" in
  let size = Mv_link.Image.symbol_size img "f" in
  let listing =
    Asm.disassemble
      ~resolve:(fun a -> Mv_link.Image.symbol_at img a)
      img.Mv_link.Image.mem ~off:f ~len:size
  in
  check_bool "prologue is a jmp to the variant" true (contains listing "jmp");
  check_bool "variant symbol resolved" true (contains listing "<f.m=1>")

let suite =
  [
    tc "instruction formats" test_insn_formats;
    tc "pc-relative targets annotated" test_disassemble_annotates_targets;
    tc "symbols resolved" test_disassemble_resolves_symbols;
    tc "garbage stops the listing gracefully" test_disassemble_stops_on_garbage;
    tc "patched prologues disassemble" test_disassemble_patched_function;
  ]
