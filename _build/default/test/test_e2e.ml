(* End-to-end tests of the full pipeline on the paper's worked example
   (Figures 2 and 3): variant generation, merging, descriptors, call-site
   patching, inlining, prologue redirection, revert, and out-of-domain
   fallback. *)

open Util
module Image = Mv_link.Image
module Descriptor = Core.Descriptor
module Runtime = Core.Runtime

let fig2_src =
  {|
    multiverse bool A;
    multiverse int B;

    int effects;

    void calc() { effects = effects + 10; }
    void log_() { effects = effects + 100; }

    multiverse void multi() {
      if (A) {
        calc();
        if (B) {
          log_();
        }
      }
    }

    int foo() {
      effects = 0;
      multi();
      return effects;
    }
  |}

(* behavior of the generic (uncommitted) program for a given A,B *)
let expected a b = (if a <> 0 then 10 else 0) + (if a <> 0 && b <> 0 then 100 else 0)

let test_generic_semantics () =
  let s = session fig2_src in
  List.iter
    (fun (a, b) ->
      set_global s "A" a;
      set_global s "B" b;
      check_int (Printf.sprintf "generic A=%d B=%d" a b) (expected a b) (run s "foo" []))
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]

let test_variant_count_after_merge () =
  let s = session fig2_src in
  let fns = Descriptor.parse_functions s.program.Core.Compiler.p_image in
  check_int "one multiversed function" 1 (List.length fns);
  match fns with
  | [ f ] ->
      (* 4 assignments merge into 3 variants: A=0 is empty for both B *)
      check_int "variant records" 3 (List.length f.fd_variants)
  | _ -> Alcotest.fail "expected exactly one function record"

let test_merged_guard_is_range () =
  let s = session fig2_src in
  let img = s.program.Core.Compiler.p_image in
  let fns = Descriptor.parse_functions img in
  let f = List.hd fns in
  let merged =
    List.find
      (fun (v : Descriptor.variant_record) ->
        match Image.symbol_at img v.va_addr with
        | Some name -> String.equal name "multi.A=0.B=01"
        | None -> false)
      f.fd_variants
  in
  let b_guard =
    List.find
      (fun (g : Descriptor.guard_record) ->
        Image.symbol_at img g.gr_var = Some "B")
      merged.va_guards
  in
  check_int "B low" 0 b_guard.gr_lo;
  check_int "B high" 1 b_guard.gr_hi

let test_commit_matches_generic_for_all_assignments () =
  let s = session fig2_src in
  List.iter
    (fun (a, b) ->
      set_global s "A" a;
      set_global s "B" b;
      let bound = Runtime.commit s.runtime in
      check_bool (Printf.sprintf "bound A=%d B=%d" a b) true (bound >= 1);
      check_int
        (Printf.sprintf "committed A=%d B=%d" a b)
        (expected a b) (run s "foo" []))
    [ (0, 0); (1, 0); (1, 1); (0, 1); (1, 1); (0, 0) ]

let test_committed_ignores_switch_writes () =
  (* after commit, the bound semantics must persist even when the switch
     changes, until the next commit (Section 2) *)
  let s = session fig2_src in
  set_global s "A" 1;
  set_global s "B" 1;
  ignore (Runtime.commit s.runtime);
  set_global s "A" 0;
  set_global s "B" 0;
  check_int "still bound to A=1,B=1" 110 (run s "foo" []);
  ignore (Runtime.commit s.runtime);
  check_int "re-commit binds A=0,B=0" 0 (run s "foo" [])

let test_revert_restores_dynamic_behavior () =
  let s = session fig2_src in
  set_global s "A" 1;
  set_global s "B" 0;
  ignore (Runtime.commit s.runtime);
  check_int "committed" 10 (run s "foo" []);
  ignore (Runtime.revert s.runtime);
  set_global s "A" 1;
  set_global s "B" 1;
  check_int "reverted follows switches again" 110 (run s "foo" [])

let test_revert_restores_text_bytes () =
  let s = session fig2_src in
  let img = s.program.Core.Compiler.p_image in
  let text = img.Image.text in
  let before = Bytes.sub img.Image.mem text.Image.sr_base text.Image.sr_size in
  set_global s "A" 1;
  set_global s "B" 1;
  ignore (Runtime.commit s.runtime);
  let during = Bytes.sub img.Image.mem text.Image.sr_base text.Image.sr_size in
  check_bool "commit changed the text segment" false (Bytes.equal before during);
  ignore (Runtime.revert s.runtime);
  let after = Bytes.sub img.Image.mem text.Image.sr_base text.Image.sr_size in
  check_bool "revert restored the text segment byte-for-byte" true
    (Bytes.equal before after)

let test_out_of_domain_falls_back_to_generic () =
  (* Figure 3(d): A=3, B=4 has no variant; the runtime reverts to the
     generic body and signals the fallback *)
  let s = session fig2_src in
  set_global s "A" 3;
  set_global s "B" 4;
  ignore (Runtime.commit s.runtime);
  check_bool "fallback signalled" true
    (List.mem "multi" (Runtime.fallbacks s.runtime));
  (* generic still behaves correctly for the out-of-domain values *)
  check_int "generic semantics for A=3,B=4" 110 (run s "foo" [])

let test_function_pointer_completeness () =
  (* calls through function pointers land in the committed variant via the
     prologue jump (Section 7.4) *)
  let src =
    fig2_src
    ^ {|
    fnptr indirect = &multi;
    int via_pointer() {
      effects = 0;
      indirect();
      return effects;
    }
  |}
  in
  let s = session src in
  set_global s "A" 1;
  set_global s "B" 1;
  ignore (Runtime.commit s.runtime);
  (* flip switches: a *pointer* call must still see the bound variant *)
  set_global s "A" 0;
  check_int "pointer call hits committed variant" 110 (run s "via_pointer" [])

let test_empty_variant_inlined_as_nops () =
  let s = session fig2_src in
  let img = s.program.Core.Compiler.p_image in
  set_global s "A" 0;
  set_global s "B" 0;
  ignore (Runtime.commit s.runtime);
  (* the call site inside foo() must now be pure nops *)
  let sites = Descriptor.parse_callsites img in
  let site = (List.hd sites).Descriptor.cs_site in
  let b = Image.read_bytes img site 5 in
  let all_nops = ref true in
  Bytes.iter (fun c -> if Char.code c <> 0x90 then all_nops := false) b;
  check_bool "call site nop-ed out (Figure 3c)" true !all_nops;
  check_int "empty variant behaves as no-op" 0 (run s "foo" [])

let test_commit_func_only_affects_one_function () =
  let src =
    {|
    multiverse int flag;
    int acc;
    multiverse void f() { if (flag) { acc = acc + 1; } }
    multiverse void g() { if (flag) { acc = acc + 100; } }
    int driver() {
      acc = 0;
      f();
      g();
      return acc;
    }
  |}
  in
  let s = session src in
  set_global s "flag" 1;
  check_int "commit_func returns 1" 1 (Runtime.commit_func s.runtime "f");
  set_global s "flag" 0;
  (* f is bound to flag=1; g still evaluates dynamically (flag=0) *)
  check_int "only f is bound" 1 (run s "driver" [])

let test_commit_refs () =
  let src =
    {|
    multiverse int a;
    multiverse int b;
    int acc;
    multiverse void fa() { if (a) { acc = acc + 1; } }
    multiverse void fb() { if (b) { acc = acc + 100; } }
    int driver() {
      acc = 0;
      fa();
      fb();
      return acc;
    }
  |}
  in
  let s = session src in
  set_global s "a" 1;
  set_global s "b" 1;
  let n = Runtime.commit_refs s.runtime "a" in
  check_int "commit_refs bound one function" 1 n;
  set_global s "a" 0;
  set_global s "b" 0;
  (* fa bound to a=1; fb dynamic and sees b=0 *)
  check_int "only fa is bound" 1 (run s "driver" []);
  check_int "revert_refs" 1 (Runtime.revert_refs s.runtime "a");
  check_int "fa dynamic again" 0 (run s "driver" [])

let test_separate_compilation () =
  (* the Figure 2 layout: config.c, multi.c, caller.c *)
  let config = {|
    multiverse bool A;
    multiverse int B;
    int effects;
  |} in
  let multi =
    {|
    extern multiverse bool A;
    extern multiverse int B;
    extern int effects;
    extern void calc();
    extern void log_();
    multiverse void multi() {
      if (A) {
        calc();
        if (B) { log_(); }
      }
    }
  |}
  in
  let caller =
    {|
    extern multiverse void multi();
    extern int effects;
    void calc() { effects = effects + 10; }
    void log_() { effects = effects + 100; }
    int foo() {
      effects = 0;
      multi();
      return effects;
    }
  |}
  in
  let s = session_units [ ("config.c", config); ("multi.c", multi); ("caller.c", caller) ] in
  set_global s "A" 1;
  set_global s "B" 1;
  ignore (Runtime.commit s.runtime);
  check_int "cross-unit commit works" 110 (run s "foo" []);
  (* the call site in caller.c was discovered via the extern declaration *)
  let sites = Descriptor.parse_callsites s.program.Core.Compiler.p_image in
  check_int "cross-unit call site recorded" 1 (List.length sites)

let test_commit_is_idempotent () =
  let s = session fig2_src in
  set_global s "A" 1;
  set_global s "B" 1;
  ignore (Runtime.commit s.runtime);
  let img = s.program.Core.Compiler.p_image in
  let text = img.Image.text in
  let snap1 = Bytes.sub img.Image.mem text.Image.sr_base text.Image.sr_size in
  ignore (Runtime.commit s.runtime);
  let snap2 = Bytes.sub img.Image.mem text.Image.sr_base text.Image.sr_size in
  check_bool "second commit is a no-op on the text" true (Bytes.equal snap1 snap2);
  check_int "still correct" 110 (run s "foo" [])

let suite =
  [
    tc "generic semantics" test_generic_semantics;
    tc "variant merge count (Figure 2)" test_variant_count_after_merge;
    tc "merged guard uses a range" test_merged_guard_is_range;
    tc "commit matches generic for all assignments" test_commit_matches_generic_for_all_assignments;
    tc "committed function ignores switch writes" test_committed_ignores_switch_writes;
    tc "revert restores dynamic behavior" test_revert_restores_dynamic_behavior;
    tc "revert restores text bytes" test_revert_restores_text_bytes;
    tc "out-of-domain falls back to generic (Figure 3d)" test_out_of_domain_falls_back_to_generic;
    tc "function-pointer calls hit the committed variant" test_function_pointer_completeness;
    tc "empty variant inlined as nops (Figure 3c)" test_empty_variant_inlined_as_nops;
    tc "commit_func affects a single function" test_commit_func_only_affects_one_function;
    tc "commit_refs/revert_refs" test_commit_refs;
    tc "separate compilation (Figure 2 layout)" test_separate_compilation;
    tc "commit is idempotent" test_commit_is_idempotent;
  ]
