(* Lowering + reference-interpreter tests: these pin down the language
   semantics that the whole back end is differentially tested against. *)

open Util
module Ir = Mv_ir.Ir
module Interp = Mv_ir.Interp



let check_run name src fn args expected =
  check_int name expected (interp_run src fn args)

(* ------------------------------------------------------------------ *)
(* Expression semantics                                                *)
(* ------------------------------------------------------------------ *)

let test_arithmetic () =
  check_run "add" "int f() { return 2 + 3; }" "f" [] 5;
  check_run "sub" "int f() { return 2 - 5; }" "f" [] (-3);
  check_run "mul" "int f() { return 6 * 7; }" "f" [] 42;
  check_run "div" "int f() { return 17 / 5; }" "f" [] 3;
  check_run "mod" "int f() { return 17 % 5; }" "f" [] 2;
  check_run "neg" "int f() { return -(3); }" "f" [] (-3);
  check_run "precedence" "int f() { return 2 + 3 * 4; }" "f" [] 14

let test_bitwise () =
  check_run "and" "int f() { return 12 & 10; }" "f" [] 8;
  check_run "or" "int f() { return 12 | 10; }" "f" [] 14;
  check_run "xor" "int f() { return 12 ^ 10; }" "f" [] 6;
  check_run "shl" "int f() { return 3 << 4; }" "f" [] 48;
  check_run "shr" "int f() { return 48 >> 4; }" "f" [] 3;
  check_run "shr negative" "int f() { return -16 >> 2; }" "f" [] (-4);
  check_run "bnot" "int f() { return ~0; }" "f" [] (-1)

let test_comparisons () =
  check_run "lt true" "int f() { return 1 < 2; }" "f" [] 1;
  check_run "lt false" "int f() { return 2 < 1; }" "f" [] 0;
  check_run "le eq" "int f() { return 2 <= 2; }" "f" [] 1;
  check_run "gt" "int f() { return 3 > 2; }" "f" [] 1;
  check_run "eq" "int f() { return 5 == 5; }" "f" [] 1;
  check_run "ne" "int f() { return 5 != 5; }" "f" [] 0;
  check_run "lnot" "int f() { return !5; }" "f" [] 0;
  check_run "lnot zero" "int f() { return !0; }" "f" [] 1

let test_short_circuit () =
  (* the right-hand side must not execute when short-circuited *)
  let src =
    {|
    int hits;
    int bump() { hits = hits + 1; return 1; }
    int and_false() { hits = 0; int r = 0 && bump(); return hits * 10 + r; }
    int and_true() { hits = 0; int r = 1 && bump(); return hits * 10 + r; }
    int or_true() { hits = 0; int r = 1 || bump(); return hits * 10 + r; }
    int or_false() { hits = 0; int r = 0 || bump(); return hits * 10 + r; }
  |}
  in
  check_run "&& skips rhs" src "and_false" [] 0;
  check_run "&& evaluates rhs" src "and_true" [] 11;
  check_run "|| skips rhs" src "or_true" [] 1;
  check_run "|| evaluates rhs" src "or_false" [] 11

let test_conditional_expr () =
  check_run "cond true" "int f(int c) { return c ? 10 : 20; }" "f" [ 1 ] 10;
  check_run "cond false" "int f(int c) { return c ? 10 : 20; }" "f" [ 0 ] 20;
  check_run "nested" "int f(int c) { return c == 1 ? 1 : c == 2 ? 2 : 3; }" "f" [ 2 ] 2

(* ------------------------------------------------------------------ *)
(* Statements and control flow                                         *)
(* ------------------------------------------------------------------ *)

let test_loops () =
  check_run "while sum" "int f(int n) { int s = 0; int i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }"
    "f" [ 10 ] 45;
  check_run "for sum" "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
    "f" [ 10 ] 45;
  check_run "do-while runs once" "int f() { int n = 0; do { n = n + 1; } while (0); return n; }"
    "f" [] 1;
  check_run "break" "int f() { int i = 0; while (1) { if (i == 5) { break; } i = i + 1; } return i; }"
    "f" [] 5;
  check_run "continue"
    "int f() { int s = 0; for (int i = 0; i < 10; i++) { if (i % 2) { continue; } s += i; } return s; }"
    "f" [] 20;
  check_run "nested break affects inner loop"
    {|int f() {
        int total = 0;
        for (int i = 0; i < 3; i++) {
          for (int j = 0; j < 10; j++) {
            if (j == 2) { break; }
            total = total + 1;
          }
        }
        return total;
      }|}
    "f" [] 6

let test_recursion () =
  check_run "factorial" "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }"
    "fact" [ 6 ] 720;
  check_run "fib" "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }"
    "fib" [ 10 ] 55;
  check_run "mutual"
    {|int is_odd(int n);
      int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
      int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }|}
    "is_even" [ 10 ] 1

let test_globals_and_arrays () =
  check_run "global rw" "int g; int f() { g = 7; g = g + 1; return g; }" "f" [] 8;
  check_run "global init" "int g = 41; int f() { return g + 1; }" "f" [] 42;
  check_run "array rw"
    "int a[8]; int f() { for (int i = 0; i < 8; i++) { a[i] = i * i; } return a[5]; }" "f" [] 25;
  check_run "byte array"
    "uint8 b[4]; int f() { b[0] = 300; return b[0]; }" "f" [] 44 (* 300 mod 256 *);
  check_run "array decays to pointer"
    "int a[4]; int f() { ptr p = a; *p = 99; return a[0]; }" "f" [] 99;
  check_run "pointer arithmetic"
    "int a[4]; int f() { a[2] = 5; ptr p = a + 16; return *p; }" "f" [] 5

let test_width_access () =
  check_run "sub-word store truncates"
    "int16 g; int f() { g = 0x12345; return g; }" "f" [] 0x2345;
  check_run "width cast deref"
    "int a[2]; int f() { a[0] = 0x11223344; return *(int8*)(a + 1); }" "f" [] 0x33

let test_fnptr_dispatch () =
  let src =
    {|
    int ten() { return 10; }
    int twenty() { return 20; }
    fnptr op = &ten;
    int call_op() { return op(); }
    int switch_and_call() {
      op = &twenty;
      return op();
    }
  |}
  in
  check_run "initial target" src "call_op" [] 10;
  check_run "reassigned target" src "switch_and_call" [] 20

let test_intrinsics () =
  check_run "atomic xchg returns old"
    "int w; int f() { w = 5; int old = __atomic_xchg(&w, 9); return old * 100 + w; }" "f" [] 509;
  check_run "rdtsc monotone"
    "int f() { int a = __rdtsc(); int b = __rdtsc(); return b >= a; }" "f" [] 1

let test_faults () =
  let expect_fault src fn args =
    let prog = lower src in
    let t = Interp.create [ prog ] in
    match Interp.run t fn args with
    | exception Interp.Fault _ -> ()
    | v -> Alcotest.failf "expected a fault, got %d" v
  in
  expect_fault "int f(int n) { return 1 / n; }" "f" [ 0 ];
  expect_fault "int f(int n) { return 1 % n; }" "f" [ 0 ];
  expect_fault "int f() { ptr p = 0 - 8; return *p; }" "f" []

let test_step_limit () =
  let prog = lower "void f() { while (1) { } }" in
  let t = Interp.create ~step_limit:10_000 [ prog ] in
  match Interp.run t "f" [] with
  | exception Interp.Step_limit_exceeded -> ()
  | _ -> Alcotest.fail "expected the step limit to trip"

(* ------------------------------------------------------------------ *)
(* IR structure                                                        *)
(* ------------------------------------------------------------------ *)

let fn_named prog name =
  List.find (fun (f : Ir.fn) -> String.equal f.fn_name name) prog.Ir.p_fns

let test_switch_reads_are_loadg () =
  let prog = lower "multiverse int c; multiverse int f() { if (c) { return 1; } return 0; }" in
  let f = fn_named prog "f" in
  let loadgs =
    List.concat_map
      (fun (b : Ir.block) ->
        List.filter_map
          (function Ir.Iloadg (_, s, _) -> Some s | _ -> None)
          b.b_instrs)
      f.fn_blocks
  in
  check_bool "reads lower to Iloadg" true (List.mem "c" loadgs);
  check_bool "read_globals finds the switch" true (List.mem "c" (Ir.read_globals f))

let test_multiverse_flags_propagate () =
  let prog =
    lower
      "multiverse int c; multiverse bind(c) void f() { if (c) { } } saveall void g() { }"
  in
  let f = fn_named prog "f" in
  check_bool "fn_multiverse" true f.fn_multiverse;
  check_bool "multiversed implies noinline" true f.fn_noinline;
  check_bool "bind carried" true (f.fn_bind = Some [ "c" ]);
  let g = fn_named prog "g" in
  check_bool "saveall convention" true (g.fn_conv = Ir.Saveall)

let test_extern_mv_flag () =
  let prog = lower "extern multiverse void f(); extern void g(); void h();" in
  check_bool "extern mv recorded" true (List.mem ("f", true) prog.Ir.p_extern_fns);
  check_bool "extern plain recorded" true (List.mem ("g", false) prog.Ir.p_extern_fns)

let suite =
  [
    tc "arithmetic" test_arithmetic;
    tc "bitwise" test_bitwise;
    tc "comparisons" test_comparisons;
    tc "short-circuit evaluation" test_short_circuit;
    tc "conditional expressions" test_conditional_expr;
    tc "loops, break, continue" test_loops;
    tc "recursion" test_recursion;
    tc "globals and arrays" test_globals_and_arrays;
    tc "width-limited access" test_width_access;
    tc "function-pointer dispatch" test_fnptr_dispatch;
    tc "intrinsics" test_intrinsics;
    tc "runtime faults" test_faults;
    tc "step limit" test_step_limit;
    tc "switch reads lower to Iloadg" test_switch_reads_are_loadg;
    tc "multiverse flags propagate" test_multiverse_flags_propagate;
    tc "extern multiverse flag" test_extern_mv_flag;
  ]
