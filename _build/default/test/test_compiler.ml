(* Driver-level tests: warnings surfacing, error reporting with unit names
   and locations, multi-unit corner cases, option plumbing, and the mvcc
   building blocks. *)

open Util
module C = Core.Compiler
module Image = Mv_link.Image

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let expect_compile_error ?expect sources =
  match C.build sources with
  | exception C.Compile_error m -> (
      match expect with
      | Some needle ->
          check_bool (Printf.sprintf "error %S mentions %S" m needle) true
            (contains m needle)
      | None -> ())
  | _ -> Alcotest.fail "expected a compile error"

let test_error_messages_carry_unit_and_location () =
  expect_compile_error ~expect:"bad.c:2" [ ("bad.c", "int x;\nint x;") ];
  expect_compile_error ~expect:"lexical" [ ("l.c", "int x = @;") ];
  expect_compile_error ~expect:"parse" [ ("p.c", "int f( {") ]

let test_warnings_are_surfaced () =
  let p =
    C.build
      [ ("w.c", "multiverse int s; multiverse void f() { s = 1; }") ]
  in
  check_bool "switch-write warning surfaced" true
    (List.exists (fun w -> contains w "write to configuration switch") (C.warnings p))

let test_variant_cap_warning_via_build () =
  let p =
    C.build ~max_variants:2
      [
        ( "cap.c",
          "multiverse values(0,1,2) int m; multiverse void f() { if (m) { } }" );
      ]
  in
  check_bool "cap warning surfaced" true
    (List.exists (fun w -> contains w "cross product") (C.warnings p));
  (* the function still works through the generic body *)
  let s = session_units [ ("cap.c", "multiverse values(0,1,2) int m; int w; multiverse void f() { if (m) { w = 1; } } int d() { w = 0; f(); return w; }") ] in
  ignore s

let test_three_unit_kernel_layout () =
  (* header-style extern declarations in every unit, definitions split *)
  let config = "multiverse int smp;\nint lock_word;" in
  let locking =
    {|
    extern multiverse int smp;
    extern int lock_word;
    multiverse void lock_() {
      if (smp) {
        while (__atomic_xchg(&lock_word, 1)) { __pause(); }
      }
    }
    multiverse void unlock_() {
      if (smp) { lock_word = 0; }
    }
  |}
  in
  let client =
    {|
    extern multiverse void lock_();
    extern multiverse void unlock_();
    extern int lock_word;
    int count;
    int work(int n) {
      for (int i = 0; i < n; i++) {
        lock_();
        count = count + 1;
        unlock_();
      }
      return count;
    }
  |}
  in
  let s =
    session_units [ ("config.c", config); ("locking.c", locking); ("client.c", client) ]
  in
  set_global s "smp" 1;
  ignore (Core.Runtime.commit s.runtime);
  check_int "works committed SMP" 100 (run s "work" [ 100 ]);
  set_global s "smp" 0;
  ignore (Core.Runtime.commit s.runtime);
  check_int "works committed UP" 200 (run s "work" [ 100 ]);
  (* call sites from client.c were recorded *)
  let sites = Core.Descriptor.parse_callsites s.program.C.p_image in
  check_int "two recorded sites" 2 (List.length sites)

let test_unit_order_does_not_matter () =
  let defs = "int v = 7;" in
  let uses = "extern int v; int get() { return v; }" in
  let a = session_units [ ("defs.c", defs); ("uses.c", uses) ] in
  let b = session_units [ ("uses.c", uses); ("defs.c", defs) ] in
  check_int "defs-first" 7 (run a "get" []);
  check_int "uses-first" 7 (run b "get" [])

let test_callsite_padding_plumbing () =
  let src =
    "multiverse int m; int w; multiverse void f() { if (m) { w = 1; } } void c() { f(); }"
  in
  let plain = C.build_string src in
  let padded = C.build_string ~callsite_padding:6 src in
  let size p = Image.symbol_size p.C.p_image "c" in
  check_int "six nops added" (size plain + 6) (size padded);
  (* non-multiverse callees are not padded *)
  let src2 = "int w; void g() { w = 1; } void c() { g(); }" in
  let plain2 = C.build_string src2 in
  let padded2 = C.build_string ~callsite_padding:6 src2 in
  check_int "plain callee unpadded"
    (Image.symbol_size plain2.C.p_image "c")
    (Image.symbol_size padded2.C.p_image "c")

let test_mem_size_plumbing () =
  let p = C.build_string ~mem_size:(1 lsl 23) "int big[262144]; void f() { big[0] = 1; }" in
  check_bool "8 MiB image accommodates a 2 MiB array" true
    (Image.size p.C.p_image = 1 lsl 23)

let test_empty_unit () =
  (* a unit with only declarations links fine *)
  let s =
    session_units
      [ ("decls.c", "extern void f();"); ("defs.c", "void f() { }") ]
  in
  check_int "runs" 0 (run s "f" [])

let test_variants_get_symbols_and_sizes () =
  let p =
    C.build_string
      "multiverse int m; int w; multiverse void f() { if (m) { w = 1; } }"
  in
  let img = p.C.p_image in
  check_bool "variant symbol linked" true (Image.symbol_opt img "f.m=0" <> None);
  check_bool "variant has a size" true (Image.symbol_size img "f.m=0" > 0)

let suite =
  [
    tc "errors carry unit and location" test_error_messages_carry_unit_and_location;
    tc "warnings are surfaced" test_warnings_are_surfaced;
    tc "variant cap warning via build" test_variant_cap_warning_via_build;
    tc "three-unit kernel layout" test_three_unit_kernel_layout;
    tc "unit order does not matter" test_unit_order_does_not_matter;
    tc "callsite_padding plumbing" test_callsite_padding_plumbing;
    tc "mem_size plumbing" test_mem_size_plumbing;
    tc "declaration-only units" test_empty_unit;
    tc "variants get symbols and sizes" test_variants_get_symbols_and_sizes;
  ]
