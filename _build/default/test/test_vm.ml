(* Machine-simulator tests: execution semantics around the stack and
   platform rules, the cost model's paper-relevant properties, branch
   prediction, performance counters, and the instruction-cache model that
   forces the runtime to flush after patching. *)

open Util
module Machine = Mv_vm.Machine
module Perf = Mv_vm.Perf
module Cost = Mv_vm.Cost
module Branch_pred = Mv_vm.Branch_pred
module Image = Mv_link.Image
module Insn = Mv_isa.Insn

let cycles_of s fn args =
  let before = s.machine.Machine.perf.Perf.cycles in
  let _ = Mv_vm.Machine.call s.machine fn args in
  s.machine.Machine.perf.Perf.cycles -. before

let test_state_persists_across_calls () =
  let s = session "int counter; int bump() { counter = counter + 1; return counter; }" in
  check_int "first" 1 (run s "bump" []);
  check_int "second" 2 (run s "bump" []);
  check_int "third" 3 (run s "bump" [])

let test_stack_discipline () =
  let s = session "int f(int n) { if (n == 0) { return 0; } return f(n - 1) + 1; }" in
  let sp_before = s.machine.Machine.regs.(Insn.sp) in
  check_int "deep recursion" 200 (run s "f" [ 200 ]);
  (* call resets sp to stack base each time; a second call must also work *)
  check_int "again" 100 (run s "f" [ 100 ]);
  ignore sp_before

let test_irq_state () =
  let s = session "void off() { __cli(); } void on() { __sti(); }" in
  check_bool "initially enabled" true s.machine.Machine.irq_enabled;
  ignore (run s "off" []);
  check_bool "disabled after cli" false s.machine.Machine.irq_enabled;
  ignore (run s "on" []);
  check_bool "enabled after sti" true s.machine.Machine.irq_enabled

let test_xen_platform_rules () =
  (* raw cli faults in a PV guest; hypercalls fault on native *)
  let s = session ~platform:Machine.Xen "void f() { __cli(); }" in
  (match run s "f" [] with
  | exception Machine.Fault _ -> ()
  | _ -> Alcotest.fail "cli must fault in a PV guest");
  let s2 = session "void f() { __hypercall(1); }" in
  (match run s2 "f" [] with
  | exception Machine.Fault _ -> ()
  | _ -> Alcotest.fail "hypercall must fault on native hardware");
  let s3 = session ~platform:Machine.Xen "void f() { __hypercall(1); }" in
  ignore (run s3 "f" []);
  check_int "hypercall counted" 1 s3.machine.Machine.perf.Perf.hypercalls

let test_perf_counters () =
  let s =
    session
      {|int w;
        int f(int n) {
          for (int i = 0; i < n; i++) {
            w = w + 1;
            __atomic_xchg(&w, i);
          }
          return w;
        }|}
  in
  let before = Perf.snapshot s.machine.Machine.perf in
  ignore (run s "f" [ 10 ]);
  let d = Perf.diff before (Perf.snapshot s.machine.Machine.perf) in
  check_int "atomics" 10 d.Perf.s_atomics;
  check_bool "instructions counted" true (d.Perf.s_instructions > 50);
  check_bool "branches counted" true (d.Perf.s_branches >= 10);
  check_bool "cycles advance" true (d.Perf.s_cycles > 0.0);
  check_bool "loads and stores" true (d.Perf.s_loads > 0 && d.Perf.s_stores > 0)

let test_mispredict_cost_is_significant () =
  (* the paper's core argument: a data-dependent branch costs ~16 cycles
     when mispredicted.  Alternate the branch direction so the predictor
     keeps failing, and compare against a constant direction. *)
  let src =
    {|int f(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) {
          if (i & 1) { s = s + 1; } else { s = s + 2; }
        }
        return s;
      }
      int g(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) {
          if (0 < 1) { s = s + 1; } else { s = s + 2; }
        }
        return s;
      }|}
  in
  let s = session src in
  ignore (run s "f" [ 200 ]);
  ignore (run s "g" [ 200 ]);
  let alternating = cycles_of s "f" [ 200 ] /. 200.0 in
  let constant = cycles_of s "g" [ 200 ] /. 200.0 in
  (* the alternating pattern is learnable by gshare history, but the first
     iterations mispredict; with a cold predictor the gap must be large *)
  Branch_pred.flush s.machine.Machine.bp;
  let cold = cycles_of s "f" [ 200 ] /. 200.0 in
  check_bool "constant branch is cheap" true (constant < alternating +. 1.0);
  check_bool "cold predictor pays" true (cold > constant)

let test_branch_predictor_learns () =
  let bp = Branch_pred.create () in
  (* train: always taken at one pc *)
  let correct = ref 0 in
  for _ = 1 to 100 do
    if Branch_pred.conditional bp ~pc:0x1234 ~taken:true then incr correct
  done;
  check_bool "mostly correct after warmup" true (!correct > 80);
  (* flushing forgets *)
  Branch_pred.flush bp;
  check_bool "first prediction after flush can miss" true
    (let c = Branch_pred.conditional bp ~pc:0x1234 ~taken:true in
     (not c) || c)

let test_btb_indirect () =
  let bp = Branch_pred.create () in
  check_bool "first indirect misses" false (Branch_pred.indirect bp ~pc:0x10 ~target:0x100);
  check_bool "repeat hits" true (Branch_pred.indirect bp ~pc:0x10 ~target:0x100);
  check_bool "target change misses" false (Branch_pred.indirect bp ~pc:0x10 ~target:0x200)

let test_atomic_dominates_spinlock_cost () =
  (* Figure 1's 28.8 vs 6.6: the atomic exchange must dominate *)
  let locked = session "int w; void f() { __cli(); int r = __atomic_xchg(&w, 1); w = 0; __sti(); }" in
  let elided = session "void f() { __cli(); __sti(); }" in
  ignore (run locked "f" []);
  ignore (run elided "f" []);
  let c_locked = cycles_of locked "f" [] in
  let c_elided = cycles_of elided "f" [] in
  check_bool "locked is several times more expensive" true (c_locked > c_elided *. 2.5)

let test_icache_staleness () =
  (* overwrite a function body without flushing: the machine must keep
     executing the stale decode; after the flush it sees the new code.
     This is exactly why Section 4 flushes after patching. *)
  let s = session "int f() { return 1; }" in
  let img = s.program.Core.Compiler.p_image in
  check_int "original" 1 (run s "f" []);
  let f = Image.symbol img "f" in
  (* patch [mov32 r0, 1] to [mov32 r0, 2] behind the machine's back *)
  Image.mprotect img ~addr:f ~len:16 Image.prot_rwx;
  Image.write_bytes img f (Mv_isa.Encode.encode (Insn.Mov_ri32 (0, 2)));
  Image.mprotect img ~addr:f ~len:16 Image.prot_rx;
  check_int "stale decode still returns 1" 1 (run s "f" []);
  Machine.flush_icache s.machine ~addr:f ~len:16;
  check_int "after flush returns 2" 2 (run s "f" [])

let test_fetch_outside_text_faults () =
  let s = session "int f() { return 1; }" in
  match Machine.call_addr s.machine 0x50 [] with
  | exception Machine.Fault _ -> ()
  | _ -> Alcotest.fail "expected a fetch fault"

let test_step_limit () =
  let program = build "void f() { while (1) { } }" in
  let machine = Machine.create ~max_steps:50_000 program.Core.Compiler.p_image in
  match Machine.call machine "f" [] with
  | exception Machine.Fault _ -> ()
  | _ -> Alcotest.fail "expected the step limit to trip"

let test_rdtsc_reads_cycles () =
  let s = session "int f() { int a = __rdtsc(); int b = __rdtsc(); return b - a; }" in
  check_bool "tsc advances" true (run s "f" [] > 0)

let test_cost_table_sanity () =
  let c = Cost.default in
  check_bool "mispredict ~16" true (c.Cost.mispredict_penalty >= 14.0 && c.Cost.mispredict_penalty <= 20.0);
  check_bool "atomic is heavy" true (c.Cost.atomic > 10.0);
  check_bool "nop is almost free" true (c.Cost.nop < c.Cost.mov);
  check_bool "indirect call costs more" true (c.Cost.call_ind > 0.0);
  (* the conversion helpers agree: 3e9 cycles = 1 second = 1000 ms *)
  check_bool "cycles_to_seconds" true (abs_float (Cost.cycles_to_seconds 3e9 -. 1.0) < 1e-9);
  check_bool "cycles_to_ms" true (abs_float (Cost.cycles_to_ms 3e9 -. 1000.0) < 1e-6)

let suite =
  [
    tc "state persists across calls" test_state_persists_across_calls;
    tc "stack discipline under recursion" test_stack_discipline;
    tc "irq state tracks cli/sti" test_irq_state;
    tc "platform rules (native vs Xen)" test_xen_platform_rules;
    tc "performance counters" test_perf_counters;
    tc "misprediction is expensive" test_mispredict_cost_is_significant;
    tc "branch predictor learns" test_branch_predictor_learns;
    tc "BTB for indirect calls" test_btb_indirect;
    tc "atomic dominates spinlock cost" test_atomic_dominates_spinlock_cost;
    tc "icache staleness until flush (Section 4)" test_icache_staleness;
    tc "fetch outside text faults" test_fetch_outside_text_faults;
    tc "machine step limit" test_step_limit;
    tc "rdtsc reads the cycle counter" test_rdtsc_reads_cycles;
    tc "cost table sanity" test_cost_table_sanity;
  ]
