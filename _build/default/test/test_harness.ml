(* Tests for the measurement harness: the statistics helpers, the paper's
   outlier-exclusion protocol (Section 6.1), and measurement stability on
   the deterministic machine. *)

open Util
module H = Mv_workloads.Harness

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_mean_and_stddev () =
  check_bool "mean empty" true (feq (H.mean []) 0.0);
  check_bool "mean" true (feq (H.mean [ 1.0; 2.0; 3.0 ]) 2.0);
  check_bool "stddev singleton" true (feq (H.stddev [ 5.0 ]) 0.0);
  (* sample stddev of 2,4,4,4,5,5,7,9 is ~2.138 *)
  check_bool "stddev" true
    (abs_float (H.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] -. 2.138) < 0.01)

let test_outlier_exclusion () =
  (* interrupt-scale disturbances are dropped; ordinary spread is kept *)
  let values = [ 10.0; 10.2; 9.9; 10.1; 10.0; 500.0; 10.0; 9.8 ] in
  let kept, excluded = H.exclude_outliers values in
  check_int "one outlier dropped" 1 (List.length excluded);
  check_int "rest kept" 7 (List.length kept);
  check_bool "the outlier is the interrupt" true (List.mem 500.0 excluded);
  (* a tight distribution loses nothing *)
  let kept2, excluded2 = H.exclude_outliers [ 7.0; 7.1; 6.9; 7.0 ] in
  check_int "nothing dropped" 0 (List.length excluded2);
  check_int "all kept" 4 (List.length kept2)

let bench_src =
  {|
  int w;
  void bench_loop(int n) {
    for (int i = 0; i < n; i = i + 1) {
      w = w + i;
    }
  }
|}

let test_measurement_is_deterministic () =
  let m1 = H.measure ~samples:50 ~calls:50 (H.session1 bench_src) ~loop_fn:"bench_loop" in
  let m2 = H.measure ~samples:50 ~calls:50 (H.session1 bench_src) ~loop_fn:"bench_loop" in
  check_bool "identical means on a deterministic machine" true
    (feq m1.H.m_mean m2.H.m_mean);
  check_bool "no outliers without jitter" true (m1.H.m_excluded = 0)

let test_jitter_produces_and_excludes_outliers () =
  let s = H.session1 bench_src in
  let m = H.measure ~samples:5000 ~calls:10 ~jitter:42 s ~loop_fn:"bench_loop" in
  (* the paper observed <= 0.04% outliers; our injection rate is ~1/2500 *)
  check_bool "some samples absorbed an interrupt" true (m.H.m_excluded > 0);
  check_bool "exclusion keeps the rate tiny" true
    (float_of_int m.H.m_excluded /. float_of_int (m.H.m_samples + m.H.m_excluded) < 0.01);
  (* the cleaned mean matches the jitter-free mean *)
  let clean = H.measure ~samples:100 ~calls:10 (H.session1 bench_src) ~loop_fn:"bench_loop" in
  check_bool "cleaned mean is unbiased" true
    (abs_float (m.H.m_mean -. clean.H.m_mean) < 0.5)

let test_counters_helper () =
  let s = H.session1 bench_src in
  let d = H.counters s ~loop_fn:"bench_loop" ~calls:100 in
  check_bool "instructions scale with calls" true (d.Mv_vm.Perf.s_instructions > 300);
  check_bool "branches counted" true (d.Mv_vm.Perf.s_branches >= 100)

let test_session_helpers () =
  let s = H.session1 "int g = 5; void f() { } fnptr p = &f;" in
  check_int "get" 5 (H.get s "g");
  H.set s "g" 9;
  check_int "set" 9 (H.get s "g");
  H.set_fnptr s "p" "f";
  let img = s.H.program.Core.Compiler.p_image in
  check_int "set_fnptr" (Mv_link.Image.symbol img "f")
    (Mv_link.Image.read img (Mv_link.Image.symbol img "p") 8)

let test_cycles_of_call_accumulates () =
  let s = H.session1 bench_src in
  let c10 = H.cycles_of_call s "bench_loop" [ 10 ] in
  let c100 = H.cycles_of_call s "bench_loop" [ 100 ] in
  check_bool "cost scales with work" true (c100 > c10 *. 5.0)

let suite =
  [
    tc "mean and stddev" test_mean_and_stddev;
    tc "outlier exclusion (Section 6.1 protocol)" test_outlier_exclusion;
    tc "measurements are deterministic" test_measurement_is_deterministic;
    tc_slow "jitter produces and excludes outliers" test_jitter_produces_and_excludes_outliers;
    tc "counter deltas" test_counters_helper;
    tc "session helpers" test_session_helpers;
    tc "cycles scale with work" test_cycles_of_call_accumulates;
  ]
