(* Descriptor binary-layout tests: the record sizes of Section 5 hold
   exactly, and parsing a linked image recovers the generation-time
   structure. *)

open Util
module D = Core.Descriptor
module Image = Mv_link.Image
module Objfile = Mv_codegen.Objfile

let fig2 =
  {|
  multiverse bool a;
  multiverse int b;
  int w;
  void side() { w = w + 1; }
  multiverse void multi() {
    if (a) {
      side();
      if (b) { side(); }
    }
  }
  int foo() { multi(); return w; }
|}

let test_record_size_constants () =
  check_int "variable record" 32 D.variable_record_size;
  check_int "callsite record" 16 D.callsite_record_size;
  check_int "function header" 48 D.function_header_size;
  check_int "variant record" 32 D.variant_record_size;
  check_int "guard record" 16 D.guard_record_size;
  (* the paper's formula: 48 + #variants * (32 + #guards * 16) per function,
     with per-variant guards folded into the total *)
  check_int "formula" (48 + (3 * 32) + (5 * 16))
    (D.function_record_size ~variants:3 ~guards:5)

let test_section_sizes_match_formulas () =
  let p = build fig2 in
  let img = p.Core.Compiler.p_image in
  let vars = D.parse_variables img in
  let sites = D.parse_callsites img in
  let fns = D.parse_functions img in
  let vrange = Option.get (Image.section_range img Objfile.Mv_variables) in
  let crange = Option.get (Image.section_range img Objfile.Mv_callsites) in
  let frange = Option.get (Image.section_range img Objfile.Mv_functions) in
  check_int "variables section" (32 * List.length vars) vrange.Image.sr_size;
  check_int "callsites section" (16 * List.length sites) crange.Image.sr_size;
  let expected_fn_bytes =
    List.fold_left
      (fun acc (f : D.function_record) ->
        let guards =
          List.fold_left
            (fun acc (v : D.variant_record) -> acc + List.length v.va_guards)
            0 f.fd_variants
        in
        acc + D.function_record_size ~variants:(List.length f.fd_variants) ~guards)
      0 fns
  in
  check_int "functions section" expected_fn_bytes frange.Image.sr_size

let test_variable_record_fields () =
  let p = build fig2 in
  let img = p.Core.Compiler.p_image in
  let vars = D.parse_variables img in
  check_int "two switches" 2 (List.length vars);
  let by_addr addr = List.find (fun (v : D.variable) -> v.vr_addr = addr) vars in
  let a = by_addr (Image.symbol img "a") in
  check_int "bool width 1" 1 a.vr_width;
  check_bool "bool unsigned" false a.vr_signed;
  check_bool "not a fnptr" false a.vr_fnptr;
  let b = by_addr (Image.symbol img "b") in
  check_int "int width 8" 8 b.vr_width;
  check_bool "int signed" true b.vr_signed

let test_fnptr_variable_flag () =
  let p = build "void t() { } multiverse fnptr op = &t; void f() { op(); }" in
  let img = p.Core.Compiler.p_image in
  match D.parse_variables img with
  | [ v ] -> check_bool "fnptr flag" true v.vr_fnptr
  | l -> Alcotest.failf "expected one variable, got %d" (List.length l)

let test_function_record_fields () =
  let p = build fig2 in
  let img = p.Core.Compiler.p_image in
  match D.parse_functions img with
  | [ f ] ->
      check_int "generic address" (Image.symbol img "multi") f.fd_generic;
      check_int "generic size" (Image.symbol_size img "multi") f.fd_generic_size;
      check_int "variant records" 3 (List.length f.fd_variants);
      List.iter
        (fun (v : D.variant_record) ->
          let name = Option.get (Image.symbol_at img v.va_addr) in
          check_int (name ^ " size") (Image.symbol_size img name) v.va_size;
          check_int (name ^ " guards") 2 (List.length v.va_guards))
        f.fd_variants
  | l -> Alcotest.failf "expected one function record, got %d" (List.length l)

let test_callsite_record_fields () =
  let p = build fig2 in
  let img = p.Core.Compiler.p_image in
  match D.parse_callsites img with
  | [ cs ] ->
      check_int "target is generic multi" (Image.symbol img "multi") cs.cs_target;
      (* the site must lie inside foo and hold a call instruction *)
      let foo = Image.symbol img "foo" in
      let foo_size = Image.symbol_size img "foo" in
      check_bool "site inside foo" true (cs.cs_site >= foo && cs.cs_site < foo + foo_size);
      let insn, _ = Mv_isa.Decode.decode img.Image.mem ~off:cs.cs_site in
      (match insn with
      | Mv_isa.Insn.Call rel ->
          check_int "call targets multi" (Image.symbol img "multi") (cs.cs_site + 5 + rel)
      | i -> Alcotest.failf "site holds %s" (Mv_isa.Asm.insn_to_string i))
  | l -> Alcotest.failf "expected one call site, got %d" (List.length l)

let test_non_box_merge_gets_multiple_records () =
  (* a function whose merged assignments do NOT form a contiguous box must
     emit one variant record per point, all pointing at the same body *)
  let src =
    {|multiverse values(0, 1, 2) int m;
      int w;
      multiverse void f() {
        if (m == 1) { w = w + 1; }
      }|}
  in
  (* m=0 and m=2 merge (both skip the increment) but {0,2} is not
     contiguous: expect 3 records, two sharing a body address *)
  let p = build src in
  let img = p.Core.Compiler.p_image in
  match D.parse_functions img with
  | [ f ] ->
      check_int "three records" 3 (List.length f.fd_variants);
      let addrs = List.map (fun (v : D.variant_record) -> v.va_addr) f.fd_variants in
      let distinct = List.sort_uniq compare addrs in
      check_int "two distinct bodies" 2 (List.length distinct)
  | l -> Alcotest.failf "expected one function record, got %d" (List.length l)

let test_callsites_only_for_multiversed_callees () =
  let p =
    build
      {|int w;
        void plain() { w = w + 1; }
        multiverse int c;
        multiverse void special() { if (c) { w = w + 1; } }
        void caller() {
          plain();
          special();
          plain();
        }|}
  in
  let img = p.Core.Compiler.p_image in
  let sites = D.parse_callsites img in
  check_int "only the multiversed callee is recorded" 1 (List.length sites);
  check_int "it targets special" (Image.symbol img "special")
    (List.hd sites).D.cs_target

let test_stats_accounting () =
  let p = build fig2 in
  let stats = Core.Stats.of_program p in
  check_int "switches" 2 stats.Core.Stats.ps_switches;
  check_int "functions" 1 stats.Core.Stats.ps_mv_functions;
  check_int "variant records" 3 stats.Core.Stats.ps_variants;
  check_int "callsites" 1 stats.Core.Stats.ps_callsites;
  check_int "descriptor overhead"
    (stats.Core.Stats.ps_sections.Core.Stats.sz_variables
    + stats.Core.Stats.ps_sections.Core.Stats.sz_functions
    + stats.Core.Stats.ps_sections.Core.Stats.sz_callsites)
    (Core.Stats.descriptor_overhead stats.Core.Stats.ps_sections)

let suite =
  [
    tc "record size constants (Section 5)" test_record_size_constants;
    tc "section sizes match the formulas" test_section_sizes_match_formulas;
    tc "variable record fields" test_variable_record_fields;
    tc "fnptr variable flag" test_fnptr_variable_flag;
    tc "function record fields" test_function_record_fields;
    tc "callsite record fields" test_callsite_record_fields;
    tc "non-box merges emit multiple records" test_non_box_merge_gets_multiple_records;
    tc "callsites only for multiversed callees" test_callsites_only_for_multiversed_callees;
    tc "stats accounting" test_stats_accounting;
  ]
