(* The multiverse run-time library (Section 4, API of Table 1).

   The runtime interprets the binary descriptor sections of a linked image,
   selects variants according to the current configuration-switch values,
   and installs them by binary patching:

   - every recorded call site of the function is retargeted to the variant,
     or — when the variant body is smaller than the call instruction —
     the body is inlined into the call site (empty bodies become nops);
   - the prologue of the generic function is overwritten with an
     unconditional jump to the variant, which catches calls the compiler
     could not see (function pointers, foreign code): completeness,
     Section 7.4.

   If no variant's guards match the current values, the runtime reverts the
   function to its generic state and signals the situation via
   [fallbacks].

   Like the paper's library, the runtime deliberately performs no
   synchronization: the caller must ensure the program is in a patchable
   state (Section 2).

   Note on signedness: descriptor records carry the declared signedness of
   each switch, but sub-word switch values are evaluated zero-extended,
   matching the machine's sub-word loads; use full-width (8-byte) switches
   for negative domain values. *)

module Image = Mv_link.Image
module Insn = Mv_isa.Insn

type site_state =
  | Site_original
  | Site_retargeted of int  (** direct call to this address *)
  | Site_inlined of int  (** body of this variant inlined *)

type site = {
  s_addr : int;
  s_size : int;  (** 5 for direct calls, 6 for indirect *)
  s_original : bytes;
  mutable s_state : site_state;
  mutable s_written : bytes;  (** what we believe the site holds *)
}

type fn_entry = {
  fe_name : string;
  fe_record : Descriptor.function_record;
  fe_sites : site list;
  mutable fe_prologue : bytes option;  (** saved generic prologue *)
  mutable fe_saved_body : bytes option;  (** saved generic body (body patching) *)
  mutable fe_installed : int option;  (** installed variant address *)
}

type fnptr_entry = {
  fp_name : string;
  fp_var : Descriptor.variable;
  fp_sites : site list;
  mutable fp_committed : int option;
}

type t = {
  image : Image.t;
  patch : Patch.t;
  variables : Descriptor.variable list;
  functions : fn_entry list;
  fnptrs : fnptr_entry list;
  mutable fallbacks : string list;  (** functions left generic by the last commit *)
  mutable skipped_sites : (int * string) list;  (** verification failures *)
  mutable inline_enabled : bool;  (** call-site body inlining (Section 4); on by default *)
  mutable strategy : strategy;
}

(** How variants are installed.

    [Call_site_patching] is the paper's design: retarget (or inline into)
    every recorded call site, plus the completeness jump in the generic
    prologue.

    [Body_patching] is the alternative Section 7.1 weighs and rejects:
    copy the (relocated) variant body over the generic body.  It patches
    one location per function instead of one per call site — faster to
    commit — but requires the runtime to relocate variant bodies, and falls
    back to a prologue jump when the variant is larger than the generic. *)
and strategy = Call_site_patching | Body_patching

exception Runtime_error of string

let errf fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* The compiler may nop-pad call sites of multiversed symbols so larger
   bodies can be inlined (Section 7.1's "adjusting the sizes of call sites").
   At attach time nothing has been patched yet, so nops directly following
   the recorded call instruction can only be that padding; they become part
   of the site. *)
let max_callsite_padding = 10

let site_of_callsite (img : Image.t) (cs : Descriptor.callsite) : site =
  let _, insn_size = Mv_isa.Decode.decode img.Image.mem ~off:cs.cs_site in
  let nop = Char.chr (Insn.opcode Insn.Nop) in
  let rec pad_len k =
    if k >= max_callsite_padding then k
    else if Bytes.get img.Image.mem (cs.cs_site + insn_size + k) = nop then pad_len (k + 1)
    else k
  in
  let size = insn_size + pad_len 0 in
  let original = Image.read_bytes img cs.cs_site size in
  {
    s_addr = cs.cs_site;
    s_size = size;
    s_original = original;
    s_state = Site_original;
    s_written = original;
  }

let name_of img addr =
  match Image.symbol_at img addr with
  | Some name -> name
  | None -> Printf.sprintf "<0x%x>" addr

(** Attach a runtime to a linked image.  [flush] is called after every text
    patch with the affected range (wire it to the machine's instruction-
    cache flush). *)
let create (img : Image.t) ~flush : t =
  let variables = Descriptor.parse_variables img in
  let fn_records = Descriptor.parse_functions img in
  let callsites = Descriptor.parse_callsites img in
  let functions =
    List.map
      (fun (fr : Descriptor.function_record) ->
        let sites =
          List.filter_map
            (fun (cs : Descriptor.callsite) ->
              if cs.cs_target = fr.fd_generic then Some (site_of_callsite img cs)
              else None)
            callsites
        in
        {
          fe_name = name_of img fr.fd_generic;
          fe_record = fr;
          fe_sites = sites;
          fe_prologue = None;
          fe_saved_body = None;
          fe_installed = None;
        })
      fn_records
  in
  let fnptrs =
    List.filter_map
      (fun (v : Descriptor.variable) ->
        if not v.vr_fnptr then None
        else
          let sites =
            List.filter_map
              (fun (cs : Descriptor.callsite) ->
                if cs.cs_target = v.vr_addr then Some (site_of_callsite img cs) else None)
              callsites
          in
          Some
            {
              fp_name = name_of img v.vr_addr;
              fp_var = v;
              fp_sites = sites;
              fp_committed = None;
            })
      variables
  in
  {
    image = img;
    patch = Patch.create img ~flush;
    variables;
    functions;
    fnptrs;
    fallbacks = [];
    skipped_sites = [];
    inline_enabled = true;
    strategy = Call_site_patching;
  }

(** Disable or re-enable call-site body inlining (the A3 ablation: measure
    what the "current PV-Ops"-style inlining contributes). *)
let set_inlining t enabled = t.inline_enabled <- enabled

(** Switch the installation strategy (the A4 ablation).  Only allowed while
    nothing is installed: revert first. *)
let set_strategy t s =
  let busy =
    List.exists (fun fe -> fe.fe_installed <> None) t.functions
    || List.exists (fun fp -> fp.fp_committed <> None) t.fnptrs
  in
  if busy then errf "cannot switch strategy while variants are installed (revert first)";
  t.strategy <- s

(* ------------------------------------------------------------------ *)
(* Switch evaluation                                                   *)
(* ------------------------------------------------------------------ *)

let read_switch t (addr : int) : int =
  match List.find_opt (fun (v : Descriptor.variable) -> v.vr_addr = addr) t.variables with
  | Some v -> Image.read t.image v.vr_addr v.vr_width
  | None -> errf "guard references unknown switch at 0x%x" addr

let guards_satisfied t (guards : Descriptor.guard_record list) : bool =
  List.for_all
    (fun (g : Descriptor.guard_record) ->
      let v = read_switch t g.gr_var in
      g.gr_lo <= v && v <= g.gr_hi)
    guards

(** Select the variant for the current switch values (first match in
    descriptor order). *)
let select_variant t (fe : fn_entry) : Descriptor.variant_record option =
  List.find_opt
    (fun (v : Descriptor.variant_record) -> guards_satisfied t v.va_guards)
    fe.fe_record.fd_variants

(* ------------------------------------------------------------------ *)
(* Site patching with verification                                     *)
(* ------------------------------------------------------------------ *)

(** A site is only touched when its current bytes are exactly what the
    runtime last wrote there (initially: what the linker produced).  A
    mismatch means some other mechanism — e.g. the prologue jump of an
    enclosing multiversed function — owns those bytes now; the site is
    skipped and reported, never corrupted. *)
let site_intact t (s : site) : bool =
  let current = Image.read_bytes t.image s.s_addr s.s_size in
  Bytes.equal current s.s_written

let write_site t (s : site) (b : bytes) (state : site_state) =
  Patch.write_text t.patch ~addr:s.s_addr b;
  s.s_written <- Image.read_bytes t.image s.s_addr s.s_size;
  s.s_state <- state

let skip_site t (s : site) reason =
  t.skipped_sites <- (s.s_addr, reason) :: t.skipped_sites

(** Point the site at [target]: either inline the body at [target] (if small
    enough) or patch a direct call.  [target_size] is the encoded size of
    the target body, from its descriptor. *)
let install_site t (s : site) ~target ~target_size =
  if not (site_intact t s) then skip_site t s "site bytes changed by another mechanism"
  else begin
    let body =
      if t.inline_enabled then
        Patch.inlineable_body t.patch ~fn_addr:target ~fn_size:target_size ~budget:s.s_size
      else None
    in
    match body with
    | Some body ->
        let b = Bytes.make s.s_size (Char.chr (Insn.opcode Insn.Nop)) in
        Bytes.blit body 0 b 0 (Bytes.length body);
        write_site t s b (Site_inlined target)
    | None ->
        (* a 6-byte indirect site gets a 5-byte direct call plus one nop *)
        let call = Patch.encode_call ~site:s.s_addr ~target in
        let b = Bytes.make s.s_size (Char.chr (Insn.opcode Insn.Nop)) in
        Bytes.blit call 0 b 0 (Bytes.length call);
        write_site t s b (Site_retargeted target)
  end

let restore_site t (s : site) =
  match s.s_state with
  | Site_original -> ()
  | Site_retargeted _ | Site_inlined _ ->
      if site_intact t s then write_site t s s.s_original Site_original
      else skip_site t s "cannot restore: site bytes changed by another mechanism"

(* ------------------------------------------------------------------ *)
(* Function-level install / revert                                     *)
(* ------------------------------------------------------------------ *)

let revert_fn_entry t (fe : fn_entry) =
  (match fe.fe_saved_body with
  | Some saved ->
      Patch.restore_bytes t.patch ~addr:fe.fe_record.fd_generic saved;
      fe.fe_saved_body <- None
  | None -> ());
  (match fe.fe_prologue with
  | Some saved ->
      Patch.restore_bytes t.patch ~addr:fe.fe_record.fd_generic saved;
      fe.fe_prologue <- None
  | None -> ());
  List.iter (restore_site t) fe.fe_sites;
  fe.fe_installed <- None

let install_variant_call_sites t (fe : fn_entry) (v : Descriptor.variant_record) =
  List.iter (fun s -> install_site t s ~target:v.va_addr ~target_size:v.va_size) fe.fe_sites;
  fe.fe_prologue <-
    Some (Patch.install_prologue_jmp t.patch ~fn_addr:fe.fe_record.fd_generic ~target:v.va_addr)

(* The Section 7.1 alternative: overwrite the generic body with the
   relocated variant body.  One patch per function, no call-site work, but
   the body must fit — otherwise fall back to the completeness jump. *)
let install_variant_body t (fe : fn_entry) (v : Descriptor.variant_record) =
  let generic = fe.fe_record.fd_generic in
  if v.va_size <= fe.fe_record.fd_generic_size then begin
    fe.fe_saved_body <-
      Some (Patch.read_text t.patch ~addr:generic ~len:fe.fe_record.fd_generic_size);
    let relocated =
      Patch.relocate_body t.patch ~src:v.va_addr ~len:v.va_size ~dst:generic
    in
    Patch.write_text t.patch ~addr:generic relocated
  end
  else
    (* variant larger than the generic body: redirect the prologue instead *)
    fe.fe_prologue <-
      Some (Patch.install_prologue_jmp t.patch ~fn_addr:generic ~target:v.va_addr)

let install_variant t (fe : fn_entry) (v : Descriptor.variant_record) =
  if fe.fe_installed = Some v.va_addr then ()
  else begin
    (* return to the pristine state first, then apply the new variant *)
    revert_fn_entry t fe;
    (match t.strategy with
    | Call_site_patching -> install_variant_call_sites t fe v
    | Body_patching -> install_variant_body t fe v);
    fe.fe_installed <- Some v.va_addr
  end

(** Commit one multiversed function: bind it to the variant matching the
    current switch values, or revert to generic (with a fallback signal)
    when no variant matches.  Returns [true] when a variant was bound. *)
let commit_fn_entry t (fe : fn_entry) : bool =
  match select_variant t fe with
  | Some v ->
      install_variant t fe v;
      true
  | None ->
      revert_fn_entry t fe;
      (* only signal when the function actually has specialized variants:
         a variant-less function is trivially bound to its generic body *)
      if fe.fe_record.fd_variants <> [] then t.fallbacks <- fe.fe_name :: t.fallbacks;
      false

(* ------------------------------------------------------------------ *)
(* Function-pointer switches                                           *)
(* ------------------------------------------------------------------ *)

let revert_fnptr_entry t (fp : fnptr_entry) =
  List.iter (restore_site t) fp.fp_sites;
  fp.fp_committed <- None

(** Bind a function-pointer switch: read its current target and patch every
    recorded indirect call site into a direct call (or inline the target
    body).  The target's size is taken from the symbol table. *)
let commit_fnptr_entry t (fp : fnptr_entry) : bool =
  let target = Image.read t.image fp.fp_var.vr_addr 8 in
  if target = 0 then begin
    revert_fnptr_entry t fp;
    t.fallbacks <- fp.fp_name :: t.fallbacks;
    false
  end
  else begin
    if fp.fp_committed <> Some target then begin
      revert_fnptr_entry t fp;
      let target_size =
        match Image.symbol_at t.image target with
        | Some name -> Image.symbol_size t.image name
        | None -> 0
      in
      List.iter (fun s -> install_site t s ~target ~target_size) fp.fp_sites;
      fp.fp_committed <- Some target
    end;
    true
  end

(* ------------------------------------------------------------------ *)
(* The Table 1 API                                                     *)
(* ------------------------------------------------------------------ *)

(** [multiverse_commit]: inspect all switches, select and install variants
    everywhere.  Returns the number of entities bound to a specialized
    state; [fallbacks t] lists functions left generic. *)
let commit t : int =
  t.fallbacks <- [];
  let bound_fns = List.filter (commit_fn_entry t) t.functions in
  let bound_ptrs = List.filter (commit_fnptr_entry t) t.fnptrs in
  List.length bound_fns + List.length bound_ptrs

(** [multiverse_revert]: restore the whole image to its unpatched state. *)
let revert t : int =
  t.fallbacks <- [];
  List.iter (revert_fn_entry t) t.functions;
  List.iter (revert_fnptr_entry t) t.fnptrs;
  List.length t.functions + List.length t.fnptrs

let find_fn t addr =
  List.find_opt (fun fe -> fe.fe_record.fd_generic = addr) t.functions

let find_fn_by_name t name =
  match Image.symbol_opt t.image name with
  | Some addr -> find_fn t addr
  | None -> None

(** [multiverse_commit_func(&fn)]. *)
let commit_func_addr t addr : int =
  match find_fn t addr with
  | Some fe -> Bool.to_int (commit_fn_entry t fe)
  | None -> -1

(** [multiverse_revert_func(&fn)]. *)
let revert_func_addr t addr : int =
  match find_fn t addr with
  | Some fe ->
      revert_fn_entry t fe;
      1
  | None -> -1

let commit_func t name =
  match Image.symbol_opt t.image name with
  | Some addr -> commit_func_addr t addr
  | None -> -1

let revert_func t name =
  match Image.symbol_opt t.image name with
  | Some addr -> revert_func_addr t addr
  | None -> -1

(** Functions whose variants guard on the switch at [var_addr]. *)
let functions_referencing t var_addr =
  List.filter
    (fun fe ->
      List.exists
        (fun (v : Descriptor.variant_record) ->
          List.exists (fun (g : Descriptor.guard_record) -> g.gr_var = var_addr) v.va_guards)
        fe.fe_record.fd_variants)
    t.functions

(** [multiverse_commit_refs(&var)]: commit every function that references
    the switch, and the switch itself if it is a function pointer. *)
let commit_refs_addr t var_addr : int =
  let fns = functions_referencing t var_addr in
  let bound = List.filter (commit_fn_entry t) fns in
  let ptr_bound =
    match List.find_opt (fun fp -> fp.fp_var.vr_addr = var_addr) t.fnptrs with
    | Some fp -> Bool.to_int (commit_fnptr_entry t fp)
    | None -> 0
  in
  List.length bound + ptr_bound

(** [multiverse_revert_refs(&var)]. *)
let revert_refs_addr t var_addr : int =
  let fns = functions_referencing t var_addr in
  List.iter (revert_fn_entry t) fns;
  let ptr_count =
    match List.find_opt (fun fp -> fp.fp_var.vr_addr = var_addr) t.fnptrs with
    | Some fp ->
        revert_fnptr_entry t fp;
        1
    | None -> 0
  in
  List.length fns + ptr_count

let commit_refs t name =
  match Image.symbol_opt t.image name with
  | Some addr -> commit_refs_addr t addr
  | None -> -1

let revert_refs t name =
  match Image.symbol_opt t.image name with
  | Some addr -> revert_refs_addr t addr
  | None -> -1

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let fallbacks t = List.rev t.fallbacks
let skipped_sites t = List.rev t.skipped_sites

let installed_variant t name =
  match find_fn_by_name t name with
  | Some fe -> Option.map (fun addr -> name_of t.image addr) fe.fe_installed
  | None -> None

type stats = {
  st_functions : int;
  st_variants : int;
  st_callsites : int;
  st_sites_inlined : int;
  st_sites_retargeted : int;
  st_patches : int;
  st_bytes_patched : int;
}

let stats t =
  let all_sites =
    List.concat_map (fun fe -> fe.fe_sites) t.functions
    @ List.concat_map (fun fp -> fp.fp_sites) t.fnptrs
  in
  {
    st_functions = List.length t.functions;
    st_variants =
      List.fold_left (fun acc fe -> acc + List.length fe.fe_record.fd_variants) 0 t.functions;
    st_callsites = List.length all_sites;
    st_sites_inlined =
      List.length (List.filter (fun s -> match s.s_state with Site_inlined _ -> true | _ -> false) all_sites);
    st_sites_retargeted =
      List.length
        (List.filter (fun s -> match s.s_state with Site_retargeted _ -> true | _ -> false) all_sites);
    st_patches = t.patch.Patch.patches;
    st_bytes_patched = t.patch.Patch.bytes_patched;
  }
