lib/core/guard.mli: Format Map
