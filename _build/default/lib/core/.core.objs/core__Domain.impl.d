lib/core/domain.ml: List Mv_ir
