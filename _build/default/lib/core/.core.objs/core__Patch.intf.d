lib/core/patch.mli: Mv_isa Mv_link
