lib/core/guard.ml: Format List Map Option String
