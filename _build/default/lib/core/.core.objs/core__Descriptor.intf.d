lib/core/descriptor.mli: Mv_codegen Mv_ir Mv_link Variantgen
