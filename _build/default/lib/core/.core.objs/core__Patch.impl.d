lib/core/patch.ml: Bytes Char Fun Int32 List Mv_isa Mv_link Printf String
