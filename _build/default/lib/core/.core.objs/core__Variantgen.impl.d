lib/core/variantgen.ml: Domain Guard Hashtbl List Mv_ir Mv_opt Option Printf String
