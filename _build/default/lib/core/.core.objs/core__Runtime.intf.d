lib/core/runtime.mli: Descriptor Mv_link Patch
