lib/core/domain.mli: Mv_ir
