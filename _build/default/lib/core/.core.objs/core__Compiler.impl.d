lib/core/compiler.ml: Bytes Descriptor Format Int64 List Minic Mv_codegen Mv_ir Mv_link String Variantgen
