lib/core/descriptor.ml: Bool Bytes Guard Int32 Int64 List Mv_codegen Mv_ir Mv_link Variantgen
