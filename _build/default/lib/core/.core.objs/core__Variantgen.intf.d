lib/core/variantgen.mli: Guard Mv_ir
