lib/core/runtime.ml: Bool Bytes Char Descriptor List Mv_isa Mv_link Option Patch Printf
