lib/core/compiler.mli: Mv_codegen Mv_ir Mv_link Variantgen
