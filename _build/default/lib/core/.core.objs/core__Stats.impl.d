lib/core/stats.ml: Compiler Descriptor Format List Mv_codegen Mv_link
