lib/core/stats.mli: Compiler Format Mv_link
