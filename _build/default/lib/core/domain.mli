(** Specialization domains for configuration switches (paper Section 3).

    The domain of a switch is the set of values for which ahead-of-time
    variants are generated.  Policy, in priority order:
    + an explicit [values(..)] attribute,
    + for enumeration types, all declared enumeration items,
    + the default [{0, 1}] ("they act as the different boolean values
      in C"). *)

(** A switch's domain.  Function-pointer switches ([Fnptr]) have no value
    domain: their binding is the pointed-to function, fixed at commit
    time. *)
type t =
  | Values of int list  (** sorted and deduplicated specialization values *)
  | Fnptr

(** [of_global g] applies the domain policy to the switch [g]. *)
val of_global : Mv_ir.Ir.global -> t

(** Number of values in the domain; [0] for [Fnptr]. *)
val cardinal : t -> int

(** [cross_product domains] enumerates every assignment of the given
    switches, each in the order of the input list.  The empty list yields
    the single empty assignment. *)
val cross_product : (string * int list) list -> (string * int) list list

(** Size [cross_product] would have, computed without building it (used to
    enforce the variant-explosion cap). *)
val cross_product_size : (string * int list) list -> int
