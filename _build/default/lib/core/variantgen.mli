(** Ahead-of-time variant generation — the compiler-plugin half of
    multiverse (paper Section 3).

    For every function carrying the [multiverse] attribute the generator
    clones the IR body once per assignment of the referenced configuration
    switches, substitutes the assigned constants for the switch reads
    {e before} optimization, optimizes each clone, and merges clones whose
    bodies become structurally equal.  The generic body is optimized too but
    never inlined, and remains the fallback for out-of-domain values. *)

(** One (possibly merged) specialized variant. *)
type variant = {
  v_symbol : string;
      (** variant symbol, e.g. ["multi.A=1.B=01"] for a merged variant *)
  v_fn : Mv_ir.Ir.fn;  (** the specialized, optimized body *)
  v_guards : Guard.t list;
      (** guard boxes covering the assignments; one descriptor record is
          emitted per box *)
  v_assignments : (string * int) list list;  (** the assignments covered *)
}

(** Generation result for one multiversed function. *)
type mv_function = {
  mf_name : string;  (** the generic function's symbol *)
  mf_switches : string list;  (** bound switches, sorted by name *)
  mf_variants : variant list;
}

type result = {
  r_prog : Mv_ir.Ir.prog;  (** input program with variants appended *)
  r_functions : mv_function list;
  r_warnings : string list;
}

(** Cap on the assignment cross product per function (default 128); beyond
    it only the generic variant is kept and a warning points the developer
    at [values(..)]/[bind(..)] — the paper's answer to variant explosion
    (Section 7.1). *)
val default_max_variants : int

(** The multiverse switches visible to a translation unit (defined or
    declared [extern multiverse]). *)
val switch_globals : Mv_ir.Ir.prog -> (string * Mv_ir.Ir.global) list

(** Replace every read of the assigned switches in [fn] with the assigned
    constant (in place). *)
val bind_switches : Mv_ir.Ir.fn -> (string * int) list -> unit

(** Symbol name for a variant covering [assignments] of [switches]:
    per-variable value lists are concatenated ("B=01") when single-digit,
    comma-joined otherwise. *)
val variant_symbol : string -> string list -> (string * int) list list -> string

(** Run variant generation over a translation unit.  Generic functions are
    optimized in place; variant functions are appended to the returned
    program so the back end emits them like ordinary code. *)
val generate : ?max_variants:int -> Mv_ir.Ir.prog -> result
