(* Guard expressions over configuration switches (Section 3).

   A guard is a conjunction of value-range constraints, one per referenced
   switch: [{ &A, .low=1, .high=1 }; { &B, .low=0, .high=1 }].  The paper
   uses ranges "instead of single values to be able to cover multiple merged
   variants" — [boxes_of_assignments] computes that cover. *)

type range = { g_var : string; g_lo : int; g_hi : int }

type t = range list  (** conjunction; variables are distinct and sorted *)

let satisfied_by (guard : t) (lookup : string -> int) : bool =
  List.for_all
    (fun { g_var; g_lo; g_hi } ->
      let v = lookup g_var in
      g_lo <= v && v <= g_hi)
    guard

let pp_range fmt { g_var; g_lo; g_hi } =
  if g_lo = g_hi then Format.fprintf fmt "%s=%d" g_var g_lo
  else Format.fprintf fmt "%s=%d..%d" g_var g_lo g_hi

let pp fmt (g : t) =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_range fmt g

let to_string g = Format.asprintf "%a" pp g

(* ------------------------------------------------------------------ *)
(* Box covers for merged variants                                      *)
(* ------------------------------------------------------------------ *)

module Smap = Map.Make (String)

let values_per_var (assignments : (string * int) list list) : int list Smap.t =
  List.fold_left
    (fun acc assignment ->
      List.fold_left
        (fun acc (var, v) ->
          let existing = Option.value ~default:[] (Smap.find_opt var acc) in
          Smap.add var (v :: existing) acc)
        acc assignment)
    Smap.empty assignments
  |> Smap.map (List.sort_uniq compare)

let contiguous vs =
  let rec go = function
    | a :: (b :: _ as rest) -> b = a + 1 && go rest
    | [ _ ] | [] -> true
  in
  go vs

(** Try to cover the assignment set with a single box (a product of
    per-variable contiguous ranges).  Succeeds exactly when the set equals
    the cross product of its per-variable projections and every projection
    is contiguous. *)
let single_box (assignments : (string * int) list list) : t option =
  match assignments with
  | [] -> None
  | first :: _ ->
      let vars = List.map fst first in
      let per_var = values_per_var assignments in
      let projections = List.map (fun v -> (v, Smap.find v per_var)) vars in
      let product_size = List.fold_left (fun acc (_, vs) -> acc * List.length vs) 1 projections in
      if product_size = List.length assignments && List.for_all (fun (_, vs) -> contiguous vs) projections
      then
        Some
          (List.map
             (fun (var, vs) ->
               { g_var = var; g_lo = List.hd vs; g_hi = List.nth vs (List.length vs - 1) })
             projections)
      else None

(** Cover the assignment set with guard boxes: one box when the set is a
    clean product of ranges (the common case after merging), otherwise one
    point box per assignment. *)
let boxes_of_assignments (assignments : (string * int) list list) : t list =
  match single_box assignments with
  | Some box -> [ box ]
  | None ->
      List.map
        (fun assignment ->
          List.map (fun (var, v) -> { g_var = var; g_lo = v; g_hi = v }) assignment)
        assignments
