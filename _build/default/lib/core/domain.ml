(* Specialization domains for configuration switches (Section 3).

   Policy, in priority order:
   1. an explicit [values(..)] attribute;
   2. for enumeration types, all declared enumeration items;
   3. the default {0, 1} — "for integer-typed variables, we default to 0 and
      1 as they act as the different boolean values in C".

   Function-pointer switches have no value domain: their "variants" are the
   functions they point to, bound at commit time. *)

module Ir = Mv_ir.Ir

type t =
  | Values of int list  (** sorted, deduplicated *)
  | Fnptr

let of_global (g : Ir.global) : t =
  if g.gl_is_fnptr then Fnptr
  else
    let values =
      match g.gl_values with
      | Some vs -> vs
      | None -> (
          match g.gl_enum_items with
          | Some (_ :: _ as items) -> items
          | Some [] | None -> [ 0; 1 ])
    in
    Values (List.sort_uniq compare values)

let cardinal = function Values vs -> List.length vs | Fnptr -> 0

(** Cross product of the domains of [switches]; each element is an
    assignment in the same order as the input list. *)
let cross_product (domains : (string * int list) list) : (string * int) list list =
  List.fold_right
    (fun (name, values) acc ->
      List.concat_map (fun v -> List.map (fun rest -> (name, v) :: rest) acc) values)
    domains [ [] ]

(** Number of assignments [cross_product] would produce, without building
    them (guards the variant-explosion cap). *)
let cross_product_size (domains : (string * int list) list) : int =
  List.fold_left (fun acc (_, vs) -> acc * List.length vs) 1 domains
