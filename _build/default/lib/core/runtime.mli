(** The multiverse run-time library: descriptor interpretation, variant
    selection, and installation by binary patching (paper Section 4 and the
    API of Table 1).

    A commit inspects the current values of all configuration switches,
    selects for each multiversed function the variant whose guards match,
    and installs it: every recorded call site is retargeted (or, when the
    body fits, the body is inlined in place of the call — empty bodies
    become pure nops), and the generic prologue is overwritten with a jump
    to the variant so that calls the compiler never saw (function pointers,
    foreign code) land in the bound variant too.  If no variant matches,
    the function reverts to its generic body and the situation is signalled
    through {!fallbacks}.

    Like the paper's library, no synchronization is performed: the caller
    guarantees a patchable state (Section 2).

    Note on signedness: descriptors record declared signedness, but
    sub-word switch values are evaluated zero-extended (matching the
    machine's sub-word loads); use 8-byte switches for negative domains. *)

type site_state =
  | Site_original
  | Site_retargeted of int  (** direct call to this variant address *)
  | Site_inlined of int  (** body of this variant inlined into the site *)

(** One patchable call site.  [s_size] is the call instruction plus any
    pristine nop padding the compiler emitted ([callsite_padding]). *)
type site = {
  s_addr : int;
  s_size : int;
  s_original : bytes;
  mutable s_state : site_state;
  mutable s_written : bytes;  (** what the runtime believes the site holds *)
}

type fn_entry = {
  fe_name : string;
  fe_record : Descriptor.function_record;
  fe_sites : site list;
  mutable fe_prologue : bytes option;  (** saved generic prologue bytes *)
  mutable fe_saved_body : bytes option;  (** saved body (body patching) *)
  mutable fe_installed : int option;  (** installed variant address *)
}

type fnptr_entry = {
  fp_name : string;
  fp_var : Descriptor.variable;
  fp_sites : site list;
  mutable fp_committed : int option;
}

type t = {
  image : Mv_link.Image.t;
  patch : Patch.t;
  variables : Descriptor.variable list;
  functions : fn_entry list;
  fnptrs : fnptr_entry list;
  mutable fallbacks : string list;
  mutable skipped_sites : (int * string) list;
  mutable inline_enabled : bool;
  mutable strategy : strategy;
}

(** Variant installation strategy.  [Call_site_patching] is the paper's
    design; [Body_patching] is the Section 7.1 alternative: the relocated
    variant body overwrites the generic body — one patch per function, no
    call-site inlining, prologue-jump fallback when the variant does not
    fit. *)
and strategy = Call_site_patching | Body_patching

exception Runtime_error of string

(** Attach a runtime to a linked image by parsing its descriptor sections.
    [flush] receives every patched range (wire it to the machine's
    instruction-cache flush). *)
val create : Mv_link.Image.t -> flush:(addr:int -> len:int -> unit) -> t

(** Disable/enable call-site body inlining (ablation A3). *)
val set_inlining : t -> bool -> unit

(** Switch the installation strategy (ablation A4).  Raises
    {!Runtime_error} while anything is installed — revert first. *)
val set_strategy : t -> strategy -> unit

(** Current value of the switch whose descriptor address is given. *)
val read_switch : t -> int -> int

(** {1 The Table 1 API}

    All functions return a count like the paper's [int] results: the number
    of entities bound (or reverted), or [-1] when the argument does not name
    a multiversed entity. *)

(** [multiverse_commit()]: bind everything to the current switch values. *)
val commit : t -> int

(** [multiverse_revert()]: restore the whole image to its unpatched
    state. *)
val revert : t -> int

(** [multiverse_commit_func(&fn)] / [multiverse_revert_func(&fn)], by
    symbol name or by address. *)
val commit_func : t -> string -> int

val revert_func : t -> string -> int
val commit_func_addr : t -> int -> int
val revert_func_addr : t -> int -> int

(** [multiverse_commit_refs(&var)] / [multiverse_revert_refs(&var)]:
    (re)bind every function whose variants guard on the switch, and the
    switch itself when it is a function pointer. *)
val commit_refs : t -> string -> int

val revert_refs : t -> string -> int
val commit_refs_addr : t -> int -> int
val revert_refs_addr : t -> int -> int

(** {1 Introspection} *)

(** Functions left generic by the last commit because no variant matched
    the switch values (the Figure 3d signal). *)
val fallbacks : t -> string list

(** Call sites skipped because their bytes were not what the runtime last
    wrote there — some other mechanism owns them (with the reason). *)
val skipped_sites : t -> (int * string) list

(** Symbol of the variant currently installed for the named function. *)
val installed_variant : t -> string -> string option

type stats = {
  st_functions : int;
  st_variants : int;
  st_callsites : int;
  st_sites_inlined : int;
  st_sites_retargeted : int;
  st_patches : int;
  st_bytes_patched : int;
}

val stats : t -> stats
