(** The machine simulator: fetch / decode / execute over a linked image,
    with a cycle cost model, branch prediction, per-page protection
    enforcement, and a decode cache that models the instruction cache.

    The decode cache is why the multiverse runtime must flush after
    patching: until {!flush_icache} covers a patched range, the machine
    keeps executing the stale decoded instructions — observable, and
    covered by the test suite. *)

module Insn = Mv_isa.Insn
module Image = Mv_link.Image

exception Fault of string

(** Native hardware or a Xen PV guest.  In a PV guest the privileged
    [cli]/[sti] fault (the kernel must go through PV-Ops); on native
    hardware [hypercall] faults. *)
type platform = Native | Xen

type t = {
  image : Image.t;
  regs : int array;
  mutable pc : int;
  perf : Perf.t;
  bp : Branch_pred.t;
  cost : Cost.t;
  platform : platform;
  cache : (Insn.t * int) option array;
  mutable irq_enabled : bool;
  mutable steps_left : int;
  max_steps : int;
}

val return_sentinel : int

val create : ?cost:Cost.t -> ?platform:platform -> ?max_steps:int -> Image.t -> t

(** Drop decode-cache entries overlapping the range (icache flush). *)
val flush_icache : t -> addr:int -> len:int -> unit

val flush_all_icache : t -> unit

(** Execute one instruction; [false] once control returns to the
    sentinel. *)
val step : t -> bool

(** Call the function at [addr] with up to 6 integer arguments; runs to
    completion and returns r0.  Memory (globals, heap) persists across
    calls. *)
val call_addr : t -> int -> int list -> int

(** [call t name args]: {!call_addr} by symbol name. *)
val call : t -> string -> int list -> int

val read_global : t -> string -> width:int -> int
val write_global : t -> string -> int -> width:int -> unit
