lib/vm/machine.mli: Branch_pred Cost Mv_isa Mv_link Perf
