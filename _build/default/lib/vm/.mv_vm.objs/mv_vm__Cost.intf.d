lib/vm/cost.mli:
