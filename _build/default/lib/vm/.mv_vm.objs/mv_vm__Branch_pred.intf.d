lib/vm/branch_pred.mli:
