lib/vm/machine.ml: Array Bool Branch_pred Cost List Mv_isa Mv_link Perf Printf
