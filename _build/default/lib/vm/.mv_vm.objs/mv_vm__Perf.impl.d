lib/vm/perf.ml: Format
