lib/vm/cost.ml:
