lib/vm/perf.mli: Format
