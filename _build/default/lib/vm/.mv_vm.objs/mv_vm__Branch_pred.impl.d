lib/vm/branch_pred.ml: Array Bool
