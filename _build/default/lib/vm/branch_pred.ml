(* Branch prediction model: a gshare-style table of 2-bit saturating counters
   for conditional branches plus a branch target buffer (BTB) for indirect
   calls.

   The paper's core performance argument (Section 1) is that a dynamic
   configuration check is nearly free in a microbenchmark loop — the
   predictor is warm — but costs a 15-20 cycle misprediction on real kernel
   paths where the entry is cold or aliased.  [flush] models the cold case;
   the A2 ablation benchmark drives both. *)

type t = {
  counters : int array;  (** 2-bit saturating: 0,1 = not taken; 2,3 = taken *)
  btb : int array;  (** last target per slot; 0 = empty *)
  mutable history : int;
  bits : int;
}

let create ?(bits = 12) () =
  { counters = Array.make (1 lsl bits) 1; btb = Array.make (1 lsl bits) 0; history = 0; bits }

let mask t = (1 lsl t.bits) - 1

let index t pc = (pc lxor (t.history lsl 2)) land mask t

(** Predict-and-update for a conditional branch at [pc]; returns [true] when
    the prediction matched the actual outcome. *)
let conditional t ~pc ~taken =
  let i = index t pc in
  let counter = t.counters.(i) in
  let predicted_taken = counter >= 2 in
  let correct = predicted_taken = taken in
  t.counters.(i) <-
    (if taken then min 3 (counter + 1) else max 0 (counter - 1));
  t.history <- ((t.history lsl 1) lor Bool.to_int taken) land mask t;
  correct

(** Predict-and-update for an indirect transfer at [pc] going to [target];
    returns [true] on a BTB hit with the right target. *)
let indirect t ~pc ~target =
  let i = pc land mask t in
  let hit = t.btb.(i) = target in
  t.btb.(i) <- target;
  hit

(** Model a cold predictor (context switch, cache pressure, aliasing). *)
let flush t =
  Array.fill t.counters 0 (Array.length t.counters) 1;
  Array.fill t.btb 0 (Array.length t.btb) 0;
  t.history <- 0

(** Model partial aliasing pressure: perturb a fraction of the table using a
    deterministic LCG so benchmarks remain reproducible. *)
let perturb t ~seed ~fraction =
  let n = Array.length t.counters in
  let count = int_of_float (float_of_int n *. fraction) in
  let state = ref (seed lor 1) in
  for _ = 1 to count do
    state := ((!state * 0x5DEECE66D) + 0xB) land max_int;
    let i = !state mod n in
    t.counters.(i) <- !state lsr 8 land 3;
    t.btb.(i) <- 0
  done
