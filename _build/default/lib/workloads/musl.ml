(* User-level case study: the musl C library (Section 6.2.2, Figure 5).

   musl guards POSIX thread-safety with an owner-less spinlock ([__lock])
   and a stdio file-object lock ([__lockfile]); it maintains
   [threads_minus_1] on every pthread_create/exit.  The multiversed build
   marks that counter as a configuration switch and the lock/unlock
   functions as variation points: in the single-threaded state the
   specialized lock bodies are empty and get inlined away as nops at every
   call site inside malloc, random and fputc.

   The mini-musl here implements:
   - a size-class free-list [malloc]/[free] (16-byte classes, header word),
   - [random] as musl's locked LCG,
   - buffered [fputc] over a 1 KiB stdio buffer with file locking. *)

type build = Plain | Multiversed

let build_name = function Plain -> "w/o multiverse" | Multiversed -> "w/ multiverse"

let source (b : build) : string =
  let mv = match b with Plain -> "" | Multiversed -> "multiverse " in
  let gate_open =
    match b with Plain -> "" | Multiversed -> "if (threads_minus_1) {"
  in
  let gate_close = match b with Plain -> "" | Multiversed -> "}" in
  Printf.sprintf
    {|
    %sint threads_minus_1;
    int malloc_lock;
    int file_lock;
    int file_lock_owner;

    %svoid __lock() {
      if (threads_minus_1) {
        while (__atomic_xchg(&malloc_lock, 1)) {
          __pause();
        }
      }
    }
    %svoid __unlock() {
      if (threads_minus_1) {
        malloc_lock = 0;
      }
    }
    // stdio locking: mainline musl takes the atomic CAS unconditionally in
    // __lockfile; the threads_minus_1 gate is exactly what the paper *adds*
    // in the multiversed build ("we extend ... the stdio file-object
    // locking such that we skip the lock if only one thread is running")
    %svoid __lockfile() {
      %s
        int tid = 1;
        if (file_lock_owner == tid) {
          return;
        }
        while (__atomic_xchg(&file_lock, 1)) {
          __pause();
        }
        file_lock_owner = tid;
      %s
    }
    %svoid __unlockfile() {
      %s
        file_lock_owner = 0;
        file_lock = 0;
      %s
    }

    // ------------------------------------------------------------
    // malloc: 16-byte size classes, per-class free lists, bump brk
    // ------------------------------------------------------------
    int bins[32];
    int heap[65536];
    int brk_off;

    ptr malloc(int n) {
      int cls = (n + 15) >> 4;
      if (cls >= 32) {
        return 0;
      }
      __lock();
      ptr p = bins[cls];
      if (p) {
        bins[cls] = *p;
      } else {
        p = heap + brk_off;
        brk_off = brk_off + ((cls + 1) * 16) + 16;
        if (brk_off >= 524288) {
          // out of arena: reset (benchmark allocations are transient)
          brk_off = 0;
          p = heap;
        }
      }
      *p = cls;
      __unlock();
      return p + 8;
    }

    void free_(ptr q) {
      if (q == 0) {
        return;
      }
      __lock();
      ptr p = q - 8;
      int cls = *p;
      *p = bins[cls];
      bins[cls] = p;
      __unlock();
    }

    // ------------------------------------------------------------
    // random: musl's locked LCG
    // ------------------------------------------------------------
    int rand_state;

    int random_() {
      __lock();
      rand_state = ((rand_state * 1103515245) + 12345) & 0x7FFFFFFF;
      int r = rand_state;
      __unlock();
      return r;
    }

    // ------------------------------------------------------------
    // fputc: buffered stdio with file-object locking
    // ------------------------------------------------------------
    uint8 file_buf[1024];
    int file_pos;
    int file_flushes;

    int fputc_(int c) {
      __lockfile();
      file_buf[file_pos] = c;
      file_pos = file_pos + 1;
      if (file_pos == 1024) {
        file_pos = 0;
        file_flushes = file_flushes + 1;
      }
      __unlockfile();
      return c;
    }

    // ------------------------------------------------------------
    // benchmark loops (one per Figure 5 series)
    // ------------------------------------------------------------
    void bench_random(int n) {
      for (int i = 0; i < n; i = i + 1) {
        random_();
      }
    }
    // malloc benchmarks run in bin steady state (allocate + free), so the
    // fast path is a free-list pop/push guarded by the elidable locks
    void bench_malloc0(int n) {
      for (int i = 0; i < n; i = i + 1) {
        free_(malloc(0));
      }
    }
    void bench_malloc1(int n) {
      for (int i = 0; i < n; i = i + 1) {
        free_(malloc(1));
      }
    }
    void bench_fputc(int n) {
      for (int i = 0; i < n; i = i + 1) {
        fputc_(97);
      }
    }
  |}
    mv mv mv mv gate_open gate_close mv gate_open gate_close

type bench = Random | Malloc0 | Malloc1 | Fputc

let bench_name = function
  | Random -> "random()"
  | Malloc0 -> "malloc(0)"
  | Malloc1 -> "malloc(1)"
  | Fputc -> "fputc('a')"

let loop_fn = function
  | Random -> "bench_random"
  | Malloc0 -> "bench_malloc0"
  | Malloc1 -> "bench_malloc1"
  | Fputc -> "bench_fputc"

let all_benches = [ Random; Malloc0; Malloc1; Fputc ]

let prepare (b : build) ~threads : Harness.session =
  let s = Harness.session1 (source b) in
  Harness.set s "threads_minus_1" threads;
  (match b with
  | Plain -> ()
  | Multiversed -> ignore (Harness.commit s));
  s

(** Mean cycles per libc call. *)
let measure ?(samples = 120) ?(calls = 200) (b : build) (bench : bench) ~threads :
    Harness.measurement =
  let s = prepare b ~threads in
  Harness.measure ~samples ~calls s ~loop_fn:(loop_fn bench)

(** Accumulated run time in milliseconds for [invocations] calls (the paper
    reports 10 million). *)
let to_ms_for (m : Harness.measurement) ~invocations =
  Mv_vm.Cost.cycles_to_ms (m.Harness.m_mean *. float_of_int invocations)

(** fputc output bandwidth in MiB/s (one byte per invocation). *)
let fputc_bandwidth (m : Harness.measurement) =
  let seconds_per_byte = Mv_vm.Cost.cycles_to_seconds m.Harness.m_mean in
  1.0 /. seconds_per_byte /. (1024.0 *. 1024.0)

(** Branches executed per call (the paper reports -40%% for malloc(1)). *)
let branches_per_call (b : build) (bench : bench) ~threads : float =
  let s = prepare b ~threads in
  let calls = 1000 in
  let d = Harness.counters s ~loop_fn:(loop_fn bench) ~calls in
  float_of_int d.Mv_vm.Perf.s_branches /. float_of_int calls
