(** User-level case study: GNU grep (paper Section 6.2.3).  The matcher's
    multi-byte mode is fixed at startup from the locale and the pattern;
    the multiversed build specializes the scanning loop for it.  The
    workload searches "a.a" in hexadecimal-formatted random text. *)

type build = Plain | Multiversed

(** Bytes scanned per run (the paper used a 2 GiB file; results scale). *)
val buffer_size : int

val source : build -> string

(** Fill the guest text buffer with deterministic hexadecimal lines. *)
val fill_text : Harness.session -> unit

(** Build, fill the buffer, set the mode, and commit (for
    [Multiversed]). *)
val prepare : build -> mb_mode:int -> Harness.session

(** Matches of "a.a" over the standard buffer (functional check). *)
val scan_count : build -> mb_mode:int -> int

(** Mean cycles per scanned byte. *)
val cycles_per_byte : ?rounds:int -> build -> mb_mode:int -> float

(** Projected end-to-end seconds for the paper's 2 GiB input. *)
val seconds_for_2gib : float -> float
