(* User-level case study: GNU grep (Section 6.2.3).

   At startup grep fixes a mode: does the matcher have to deal with
   multi-byte (UTF-8) characters, given the locale and the pattern?  The
   mode never changes afterwards, yet the inner matching loop keeps
   consulting it.  The multiversed build marks the mode variable as a
   configuration switch and the scanning function as a variation point, so
   committing specializes the hot loop for the single-byte case.

   The workload mirrors the paper's: search for the pattern "a.a" in a
   buffer of hexadecimal-formatted random numbers (the paper used a 2 GiB
   ramdisk file; we scan a 64 KiB buffer and scale). *)

type build = Plain | Multiversed

let buffer_size = 65536

let source (b : build) : string =
  let mv = match b with Plain -> "" | Multiversed -> "multiverse " in
  Printf.sprintf
    {|
    uint8 text[%d];
    %sint mb_mode;
    int line_count;
    int letter_count;

    // match count for the pattern "a.a" ('.' = any byte except newline)
    %sint grep_scan(int len) {
      int count = 0;
      int i = 0;
      while (i < len) {
        int c = text[i];
        if (c > 57) {
          // non-digit byte: classify it, and in multi-byte mode first
          // validate the character sequence it might start
          letter_count = letter_count + 1;
          if (mb_mode) {
            int k = text[i + 1];
            if (k >= 128) {
              i = i + 2;
              continue;
            }
          }
        }
        if (c == 97) {
          if (i + 2 < len) {
            int mid = text[i + 1];
            if (mid != 10) {
              int c2 = text[i + 2];
              if (c2 == 97) {
                count = count + 1;
              }
            }
          }
        }
        if (c == 10) {
          line_count = line_count + 1;
        }
        i = i + 1;
      }
      return count;
    }
  |}
    buffer_size mv mv

(** Deterministic "hexadecimal-formatted random numbers" text, matching the
    paper's workload: hex digits in lines of 64 characters. *)
let fill_text (s : Harness.session) =
  let img = s.Harness.program.Core.Compiler.p_image in
  let base = Mv_link.Image.symbol img "text" in
  let state = ref 0x2545F491 in
  let hex = "0123456789abcdef" in
  for i = 0 to buffer_size - 1 do
    let c =
      if i mod 64 = 63 then '\n'
      else begin
        state := ((!state * 1103515245) + 12345) land 0x7FFFFFFF;
        hex.[(!state lsr 16) land 15]
      end
    in
    Mv_link.Image.write img (base + i) (Char.code c) 1
  done

let prepare (b : build) ~mb_mode : Harness.session =
  let s = Harness.session1 (source b) in
  fill_text s;
  Harness.set s "mb_mode" mb_mode;
  (match b with
  | Plain -> ()
  | Multiversed -> ignore (Harness.commit s));
  s

(** Match count over the standard buffer (functional check). *)
let scan_count (b : build) ~mb_mode : int =
  let s = prepare b ~mb_mode in
  Harness.call s "grep_scan" [ buffer_size ]

(** Cycles per scanned byte. *)
let cycles_per_byte ?(rounds = 30) (b : build) ~mb_mode : float =
  let s = prepare b ~mb_mode in
  (* warmup *)
  ignore (Harness.call s "grep_scan" [ buffer_size ]);
  let total = ref 0.0 in
  for _ = 1 to rounds do
    total := !total +. Harness.cycles_of_call s "grep_scan" [ buffer_size ]
  done;
  !total /. float_of_int rounds /. float_of_int buffer_size

(** Projected end-to-end seconds for the paper's 2 GiB input. *)
let seconds_for_2gib cycles_per_byte =
  Mv_vm.Cost.cycles_to_seconds (cycles_per_byte *. 2147483648.0)
