lib/workloads/callsite_farm.ml: Bool Buffer Core Harness Printf Unix
