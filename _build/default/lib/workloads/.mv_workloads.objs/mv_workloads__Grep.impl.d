lib/workloads/grep.ml: Char Core Harness Mv_link Mv_vm Printf String
