lib/workloads/spinlock.ml: Bool Harness Printf
