lib/workloads/harness.ml: Core Format List Mv_link Mv_vm Option
