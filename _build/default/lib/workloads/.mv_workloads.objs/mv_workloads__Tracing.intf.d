lib/workloads/tracing.mli: Harness
