lib/workloads/pvops.ml: Harness Mv_vm
