lib/workloads/pvops.mli: Harness Mv_vm
