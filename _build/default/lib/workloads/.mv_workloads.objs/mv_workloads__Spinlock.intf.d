lib/workloads/spinlock.mli: Harness
