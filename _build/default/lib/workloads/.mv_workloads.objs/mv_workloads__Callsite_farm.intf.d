lib/workloads/callsite_farm.mli:
