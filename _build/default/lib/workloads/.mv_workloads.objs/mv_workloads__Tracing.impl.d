lib/workloads/tracing.ml: Bool Core Harness List Mv_link Printf
