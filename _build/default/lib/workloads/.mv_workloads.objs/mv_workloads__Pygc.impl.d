lib/workloads/pygc.ml: Harness Printf
