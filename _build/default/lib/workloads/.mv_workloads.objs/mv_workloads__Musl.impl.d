lib/workloads/musl.ml: Harness Mv_vm Printf
