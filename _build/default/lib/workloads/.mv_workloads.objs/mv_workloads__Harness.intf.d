lib/workloads/harness.mli: Core Format Mv_vm
