lib/workloads/musl.mli: Harness
