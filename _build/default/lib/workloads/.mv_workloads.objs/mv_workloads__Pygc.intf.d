lib/workloads/pygc.mli: Harness
