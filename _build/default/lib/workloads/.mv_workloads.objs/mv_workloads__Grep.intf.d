lib/workloads/grep.mli: Harness
