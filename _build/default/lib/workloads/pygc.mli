(** User-level case study: cPython's garbage-collector enable flag on the
    object-allocation path (paper Section 6.2.1).  The paper could not
    measure this stably on real hardware; the deterministic simulator
    reports the modeled delta, with that caveat attached in the bench. *)

type build = Plain | Multiversed

val source : build -> string

val prepare : build -> gc_enabled:int -> Harness.session

(** Mean cycles per object allocation. *)
val measure :
  ?samples:int -> ?calls:int -> build -> gc_enabled:int -> Harness.measurement

(** Collections triggered after [allocations] (threshold 700, as in
    cPython). *)
val collections_after : build -> gc_enabled:int -> allocations:int -> int
