(** User-level case study: the musl C library (paper Section 6.2.2,
    Figure 5).  A mini-musl with a size-class [malloc]/[free], the locked
    LCG [random], and buffered [fputc] with stdio file locking; the
    multiversed build elides all locking in the single-threaded state. *)

type build =
  | Plain  (** unmodified musl: stdio locking takes the atomic CAS always *)
  | Multiversed  (** threads_minus_1 multiversed, locks are variation points *)

val build_name : build -> string
val source : build -> string

type bench = Random | Malloc0 | Malloc1 | Fputc

val bench_name : bench -> string
val loop_fn : bench -> string
val all_benches : bench list

(** Build, set [threads_minus_1], and commit (for [Multiversed]). *)
val prepare : build -> threads:int -> Harness.session

(** Mean cycles per libc call. *)
val measure :
  ?samples:int -> ?calls:int -> build -> bench -> threads:int -> Harness.measurement

(** Accumulated milliseconds for [invocations] calls (the paper reports
    10 million). *)
val to_ms_for : Harness.measurement -> invocations:int -> float

(** fputc output bandwidth in MiB/s (paper: 124 -> 264 MiB/s). *)
val fputc_bandwidth : Harness.measurement -> float

(** Branches executed per call (paper: -40% for malloc(1)). *)
val branches_per_call : build -> bench -> threads:int -> float
