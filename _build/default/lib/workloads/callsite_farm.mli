(** The patch-cost experiment (paper Section 6.1 scalars: 1161 spinlock
    call sites, ~16 ms patch time, +40 KiB image).  Synthesizes a
    kernel-sized population of spinlock call sites and measures commit
    cost and multiverse size overhead. *)

val spinlock_core : string

(** A translation unit with [callers] functions of [pairs] lock/unlock
    pairs each: [callers * pairs * 2] recorded call sites, plus a
    [run_all] dispatcher. *)
val source : callers:int -> pairs:int -> string

type result = {
  r_callsites : int;
  r_commit_ms : float;  (** host wall-clock of one full commit *)
  r_revert_ms : float;
  r_patches : int;
  r_bytes_patched : int;
  r_descriptor_bytes : int;
  r_variant_text_bytes : int;
}

(** Build a farm of about [sites] call sites (default 1161) and measure. *)
val run : ?sites:int -> ?smp:bool -> unit -> result
