(** Extension workload: Ftrace-style function tracing via multiverse
    (paper Section 1.1 lists Ftrace among the ad-hoc kernel patching
    mechanisms multiverse unifies).  Every instrumented function starts
    with a probe; committed off, the empty probe variant is inlined as
    nops into every site — zero-cost probes. *)

type build =
  | Plain  (** the probe checks [trace_enabled] dynamically *)
  | Multiversed  (** probes are variation points, patched by commit *)

val build_name : build -> string

(** Ring-buffer capacity in events. *)
val ring_size : int

val source : build -> string

(** Build, set [trace_enabled], commit (for [Multiversed]). *)
val prepare : build -> enabled:bool -> Harness.session

(** Mean cycles per instrumented syscall-triple. *)
val measure : ?samples:int -> ?calls:int -> build -> enabled:bool -> Harness.measurement

(** Events recorded after [calls] benchmark iterations. *)
val events_recorded : build -> enabled:bool -> calls:int -> int

(** The last [n] recorded function ids, oldest first. *)
val ring_tail : Harness.session -> n:int -> int list

(** Probe sites currently inlined as nops. *)
val nop_sites : Harness.session -> int
