(* Extension workload: Ftrace-style function tracing via multiverse.

   Section 1.1 of the paper lists Ftrace among the kernel's home-grown
   binary-patching mechanisms: every traceable function begins with a probe
   that is patched to nops while tracing is off.  Multiverse subsumes the
   mechanism directly: the probe is a multiversed function guarded by a
   [trace_enabled] switch — committed off, the empty variant is inlined as
   nops into every instrumentation site (zero-cost probes); committed on,
   probes record into a ring buffer. *)

type build = Plain | Multiversed

let build_name = function
  | Plain -> "dynamic check (no patching)"
  | Multiversed -> "multiversed probes"

let ring_size = 1024

let source (b : build) : string =
  let mv = match b with Plain -> "" | Multiversed -> "multiverse " in
  Printf.sprintf
    {|
    %sint trace_enabled;
    int trace_buf[%d];
    int trace_pos;
    int trace_dropped;

    // the probe every instrumented function starts with (Ftrace's mcount)
    %svoid trace_hook(int fn_id) {
      if (trace_enabled) {
        trace_buf[trace_pos & %d] = fn_id;
        trace_pos = trace_pos + 1;
      }
    }

    // ------------------------------------------------------------
    // instrumented "kernel" functions
    // ------------------------------------------------------------
    int file_size;

    int vfs_read(int n) {
      trace_hook(1);
      return n < file_size ? n : file_size;
    }

    int vfs_write(int n) {
      trace_hook(2);
      file_size = file_size + n;
      return n;
    }

    int sys_getpid() {
      trace_hook(3);
      return 42;
    }

    void bench_loop(int n) {
      for (int i = 0; i < n; i = i + 1) {
        vfs_write(8);
        vfs_read(4);
        sys_getpid();
      }
    }
  |}
    mv ring_size mv (ring_size - 1)

let prepare (b : build) ~enabled : Harness.session =
  let s = Harness.session1 (source b) in
  Harness.set s "trace_enabled" (Bool.to_int enabled);
  (match b with
  | Plain -> ()
  | Multiversed -> ignore (Harness.commit s));
  s

(** Mean cycles per instrumented syscall-triple. *)
let measure ?(samples = 120) ?(calls = 100) (b : build) ~enabled : Harness.measurement =
  let s = prepare b ~enabled in
  Harness.measure ~samples ~calls s ~loop_fn:"bench_loop"

(** Events recorded after running [calls] benchmark iterations (three
    probes each). *)
let events_recorded (b : build) ~enabled ~calls : int =
  let s = prepare b ~enabled in
  ignore (Harness.call s "bench_loop" [ calls ]);
  Harness.get s "trace_pos"

(** The last [n] recorded function ids, oldest first. *)
let ring_tail (s : Harness.session) ~n : int list =
  let img = s.Harness.program.Core.Compiler.p_image in
  let base = Mv_link.Image.symbol img "trace_buf" in
  let pos = Harness.get s "trace_pos" in
  List.init n (fun i ->
      let idx = (pos - n + i) land (ring_size - 1) in
      Mv_link.Image.read img (base + (idx * 8)) 8)

(** The probe sites that became pure nops when tracing was committed off. *)
let nop_sites (s : Harness.session) : int =
  (Core.Runtime.stats s.Harness.runtime).Core.Runtime.st_sites_inlined
