(* User-level case study: cPython's garbage-collector enable flag
   (Section 6.2.1).

   cPython's [gc.enable()]/[gc.disable()] toggle a boolean that the
   object-allocation path (_PyObject_GC_Alloc) consults on every
   allocation: when enabled, the object is linked into generation 0 and the
   collection threshold (700 allocations by default) is checked.  The
   multiversed build marks the flag as a configuration switch and the
   allocation function as a variation point.

   The paper could not obtain stable measurements for this case study on
   real hardware ("we cannot report on a significant influence of
   multiverse"); the simulator is deterministic, so the bench reports the
   modeled delta with that caveat attached. *)

type build = Plain | Multiversed

let source (b : build) : string =
  let mv = match b with Plain -> "" | Multiversed -> "multiverse " in
  Printf.sprintf
    {|
    %sint gc_enabled = 1;
    int gc_heap[131072];
    int gc_brk;
    int gc_head;
    int gc_count;
    int gc_collections;
    int gc_threshold = 700;

    void gc_collect() {
      // walk generation 0 (bounded by the threshold) and unlink everything
      ptr q = gc_head;
      while (q) {
        q = *q;
      }
      gc_head = 0;
      gc_count = 0;
      gc_collections = gc_collections + 1;
    }

    %sptr gc_alloc(int n) {
      int need = (((n + 15) / 16) * 16) + 16;
      if ((gc_brk + need) >= 1048576) {
        // arena wrap: allocations in the benchmark are transient
        gc_brk = 0;
        gc_head = 0;
        gc_count = 0;
      }
      ptr p = gc_heap + gc_brk;
      gc_brk = gc_brk + need;
      if (gc_enabled) {
        *p = gc_head;
        gc_head = p;
        gc_count = gc_count + 1;
        if (gc_count >= gc_threshold) {
          gc_collect();
        }
      }
      return p + 8;
    }

    void bench_alloc(int n) {
      for (int i = 0; i < n; i = i + 1) {
        gc_alloc(32);
      }
    }
  |}
    mv mv

let prepare (b : build) ~gc_enabled : Harness.session =
  let s = Harness.session1 (source b) in
  Harness.set s "gc_enabled" gc_enabled;
  (match b with
  | Plain -> ()
  | Multiversed -> ignore (Harness.commit s));
  s

(** Mean cycles per object allocation. *)
let measure ?(samples = 120) ?(calls = 200) (b : build) ~gc_enabled :
    Harness.measurement =
  let s = prepare b ~gc_enabled in
  Harness.measure ~samples ~calls s ~loop_fn:"bench_alloc"

(** Functional check: collections must trigger every [threshold]
    allocations while the collector is enabled. *)
let collections_after (b : build) ~gc_enabled ~allocations : int =
  let s = prepare b ~gc_enabled in
  ignore (Harness.call s "bench_alloc" [ allocations ]);
  Harness.get s "gc_collections"
