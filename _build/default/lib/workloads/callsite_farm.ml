(* The patch-cost experiment (Section 6.1 scalars).

   The paper's multiversed kernel records 1161 call sites of the spinlock
   functions; patching them all takes about 16 ms and the (compressed)
   kernel image grows by 40 KiB.  This module synthesizes a kernel-sized
   population of spinlock call sites spread over many caller functions and
   measures:
   - the wall-clock time of a full [multiverse_commit]/revert cycle,
   - the number of call sites and patched bytes,
   - the image-size overhead attributable to multiverse (variant bodies and
     descriptor sections). *)

let spinlock_core =
  {|
    multiverse int config_smp;
    int lock_word;

    multiverse void spin_irq_lock() {
      __cli();
      if (config_smp) {
        while (__atomic_xchg(&lock_word, 1)) {
          __pause();
        }
      }
    }

    multiverse void spin_irq_unlock() {
      if (config_smp) {
        lock_word = 0;
      }
      __sti();
    }
  |}

(** Kernel-ish translation unit with [callers] functions, each containing
    [pairs] lock/unlock pairs: [callers * pairs * 2] recorded call sites. *)
let source ~callers ~pairs : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf spinlock_core;
  for i = 0 to callers - 1 do
    Buffer.add_string buf (Printf.sprintf "\nvoid subsystem_%d() {\n" i);
    for _ = 1 to pairs do
      Buffer.add_string buf "  spin_irq_lock();\n  spin_irq_unlock();\n"
    done;
    Buffer.add_string buf "}\n"
  done;
  (* a dispatcher so every caller is reachable *)
  Buffer.add_string buf "\nvoid run_all() {\n";
  for i = 0 to callers - 1 do
    Buffer.add_string buf (Printf.sprintf "  subsystem_%d();\n" i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

type result = {
  r_callsites : int;
  r_commit_ms : float;  (** host wall-clock for one full commit *)
  r_revert_ms : float;
  r_patches : int;
  r_bytes_patched : int;
  r_descriptor_bytes : int;
  r_variant_text_bytes : int;
}

(** Build a farm with approximately [sites] call sites (the paper: 1161)
    and measure the patching cost. *)
let run ?(sites = 1161) ?(smp = true) () : result =
  let pairs = 5 in
  let callers = (sites + (pairs * 2) - 1) / (pairs * 2) in
  let s = Harness.session1 (source ~callers ~pairs) in
  Harness.set s "config_smp" (Bool.to_int smp);
  (* one cold run to warm any lazy state, then measure *)
  ignore (Harness.commit s);
  ignore (Harness.revert s);
  let t0 = Unix.gettimeofday () in
  let bound = Harness.commit s in
  let t1 = Unix.gettimeofday () in
  ignore (Harness.revert s);
  let t2 = Unix.gettimeofday () in
  assert (bound >= 2);
  let stats = Core.Runtime.stats s.Harness.runtime in
  let pstats = Core.Stats.of_program s.Harness.program in
  {
    r_callsites = stats.Core.Runtime.st_callsites;
    r_commit_ms = (t1 -. t0) *. 1000.0;
    r_revert_ms = (t2 -. t1) *. 1000.0;
    r_patches = stats.Core.Runtime.st_patches;
    r_bytes_patched = stats.Core.Runtime.st_bytes_patched;
    r_descriptor_bytes = Core.Stats.descriptor_overhead pstats.Core.Stats.ps_sections;
    r_variant_text_bytes = pstats.Core.Stats.ps_text_in_variants;
  }
