(* Graph-coloring register allocation.

   Virtual registers are colored with the callee-saved machine registers
   r6..r12 (values therefore survive calls without caller-side spills);
   uncolorable registers are assigned stack slots and rewritten through the
   two reserved scratch registers at emission time.  r0..r5 carry arguments
   and the return value, r13/r14 are the spill scratch pair, r15 is the
   stack pointer. *)

module Ir = Mv_ir.Ir
module Iset = Mv_opt.Dce.Iset
module Imap = Mv_opt.Dce.Imap

(** Callee-saved machine registers available for coloring.  Values in these
    survive calls, at the cost of a push/pop pair in the prologue. *)
let callee_saved_pool = [ 6; 7; 8; 9; 10; 11; 12 ]

(** Caller-saved registers usable for free in *leaf* functions (no calls to
    clobber them, no save/restore needed).  Registers still holding incoming
    arguments are excluded per function. *)
let caller_saved_pool = [ 1; 2; 3; 4; 5 ]

let max_reg_args = 6

type assignment =
  | Phys of int
  | Slot of int
  | Unused  (** never mentioned in the body (e.g. eliminated by DCE) *)

type t = {
  assign : assignment array;  (** indexed by virtual register *)
  used_callee_saved : int list;  (** sorted machine registers to save *)
  frame_slots : int;
}

let assignment_of t vreg = t.assign.(vreg)

(* ------------------------------------------------------------------ *)
(* Interference graph construction                                     *)
(* ------------------------------------------------------------------ *)

let live_out_of live_in b =
  List.fold_left
    (fun acc succ ->
      match Imap.find_opt succ live_in with
      | Some s -> Iset.union acc s
      | None -> acc)
    Iset.empty
    (Ir.successors b.Ir.b_term)

let build_interference (fn : Ir.fn) : (int, Iset.t) Hashtbl.t =
  let graph : (int, Iset.t) Hashtbl.t = Hashtbl.create 64 in
  let node r =
    if not (Hashtbl.mem graph r) then Hashtbl.replace graph r Iset.empty
  in
  let edge a b =
    if a <> b then begin
      node a;
      node b;
      Hashtbl.replace graph a (Iset.add b (Hashtbl.find graph a));
      Hashtbl.replace graph b (Iset.add a (Hashtbl.find graph b))
    end
  in
  let live_in = Mv_opt.Dce.liveness fn in
  List.iter
    (fun (b : Ir.block) ->
      let live = ref (live_out_of live_in b) in
      Iset.iter node !live;
      List.iter
        (fun r ->
          node r;
          live := Iset.add r !live)
        (Mv_opt.Dce.term_uses b.b_term);
      List.iter
        (fun i ->
          (match Ir.instr_def i with
          | Some d ->
              node d;
              (* the def interferes with everything live after it *)
              Iset.iter (fun r -> edge d r) (Iset.remove d !live);
              live := Iset.remove d !live
          | None -> ());
          List.iter
            (fun op ->
              match op with
              | Ir.Reg r ->
                  node r;
                  live := Iset.add r !live
              | Ir.Imm _ -> ())
            (Ir.instr_uses i))
        (List.rev b.b_instrs))
    fn.fn_blocks;
  (* parameters are all defined simultaneously at entry and must not share *)
  let rec pairs = function
    | [] -> ()
    | p :: rest ->
        List.iter (fun q -> edge p q) rest;
        pairs rest
  in
  pairs fn.fn_params;
  (* parameters also interfere with the live-in of the entry block *)
  (match fn.fn_blocks with
  | entry :: _ ->
      let live_entry =
        Option.value ~default:Iset.empty (Imap.find_opt entry.b_id live_in)
      in
      List.iter (fun p -> Iset.iter (fun r -> edge p r) (Iset.remove p live_entry)) fn.fn_params
  | [] -> ());
  graph

(* ------------------------------------------------------------------ *)
(* Greedy coloring with spilling                                       *)
(* ------------------------------------------------------------------ *)

let is_leaf (fn : Ir.fn) =
  List.for_all
    (fun (b : Ir.block) ->
      List.for_all
        (function Ir.Icall _ | Ir.Icallp _ -> false | _ -> true)
        b.b_instrs)
    fn.fn_blocks

let allocate (fn : Ir.fn) : t =
  let allocatable =
    if is_leaf fn then
      (* caller-saved first (free), but never a register that still holds an
         incoming argument at entry *)
      let nparams = List.length fn.fn_params in
      List.filter (fun r -> r >= nparams) caller_saved_pool @ callee_saved_pool
    else callee_saved_pool
  in
  let graph = build_interference fn in
  let assign = Array.make (max 1 fn.fn_nregs) Unused in
  (* color in order of decreasing degree so constrained nodes go first *)
  let nodes =
    Hashtbl.fold (fun r adj acc -> (r, Iset.cardinal adj) :: acc) graph []
    |> List.sort (fun (_, d1) (_, d2) -> compare d2 d1)
    |> List.map fst
  in
  let colored : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let spilled = ref [] in
  List.iter
    (fun r ->
      let adj = Hashtbl.find graph r in
      let taken =
        Iset.fold
          (fun n acc ->
            match Hashtbl.find_opt colored n with
            | Some c -> Iset.add c acc
            | None -> acc)
          adj Iset.empty
      in
      match List.find_opt (fun c -> not (Iset.mem c taken)) allocatable with
      | Some c -> Hashtbl.replace colored r c
      | None -> spilled := r :: !spilled)
    nodes;
  let slot = ref 0 in
  List.iter
    (fun r ->
      assign.(r) <- Slot !slot;
      incr slot)
    (List.rev !spilled);
  Hashtbl.iter (fun r c -> assign.(r) <- Phys c) colored;
  let used =
    Hashtbl.fold (fun _ c acc -> Iset.add c acc) colored Iset.empty
    |> Iset.elements
    |> List.filter (fun c -> List.mem c callee_saved_pool)
  in
  { assign; used_callee_saved = used; frame_slots = !slot }
