(** Instruction selection and emission: IR functions to encoded machine
    code.

    The emitter records the text offset of every call instruction and its
    target symbol; the compiler driver turns the sites targeting
    multiversed symbols into [multiverse.callsites] descriptor records —
    the compiler-provided call-site knowledge that distinguishes multiverse
    from ad-hoc inline-assembler patching mechanisms (paper Section 3). *)

exception Error of string

type callsite = {
  cs_insn_offset : int;  (** offset of the call instruction in the fragment *)
  cs_callee : string;  (** target symbol (fn-pointer variable if indirect) *)
  cs_indirect : bool;
}

type fragment = {
  fr_name : string;
  fr_code : bytes;
  fr_relocs : Objfile.reloc list;  (** offsets relative to the fragment *)
  fr_callsites : callsite list;
}

(** Emit one function.

    [call_pad] gives, per callee symbol, the number of [nop] bytes to emit
    after the call instruction — padding that widens the runtime's inlining
    budget (the Section 7.1 "adjusting the sizes of call sites"
    extension). *)
val emit_fn : ?call_pad:(string -> int) -> Mv_ir.Ir.fn -> fragment
