(** Graph-coloring register allocation.

    Virtual registers are colored with the callee-saved machine registers
    (values survive calls at the cost of one push/pop pair in the
    prologue); leaf functions may additionally use caller-saved registers
    for free.  Uncolorable registers get stack slots and are rewritten
    through the two reserved scratch registers at emission time. *)

(** Callee-saved registers available for coloring (r6..r12). *)
val callee_saved_pool : int list

(** Caller-saved registers usable in leaf functions (r1..r5, minus those
    still holding incoming arguments). *)
val caller_saved_pool : int list

(** Arguments passed in registers r0..r5. *)
val max_reg_args : int

type assignment =
  | Phys of int  (** colored with this machine register *)
  | Slot of int  (** spilled to this frame slot *)
  | Unused  (** never mentioned in the body (e.g. eliminated by DCE) *)

type t = {
  assign : assignment array;  (** indexed by virtual register *)
  used_callee_saved : int list;  (** callee-saved registers to save *)
  frame_slots : int;
}

val assignment_of : t -> Mv_ir.Ir.reg -> assignment

(** Does the function contain no calls?  Leaf functions may color with
    caller-saved registers. *)
val is_leaf : Mv_ir.Ir.fn -> bool

(** Interference graph: register -> interfering registers. *)
val build_interference : Mv_ir.Ir.fn -> (int, Mv_opt.Dce.Iset.t) Hashtbl.t

val allocate : Mv_ir.Ir.fn -> t
