lib/codegen/regalloc.mli: Hashtbl Mv_ir Mv_opt
