lib/codegen/emit.mli: Mv_ir Objfile
