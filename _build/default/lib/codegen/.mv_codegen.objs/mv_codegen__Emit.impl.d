lib/codegen/emit.ml: Array Buffer Hashtbl Int32 List Minic Mv_ir Mv_isa Objfile Printf Regalloc
