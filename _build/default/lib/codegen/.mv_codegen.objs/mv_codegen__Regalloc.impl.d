lib/codegen/regalloc.ml: Array Hashtbl List Mv_ir Mv_opt Option
