lib/codegen/objfile.ml: Buffer Format List Printf String
