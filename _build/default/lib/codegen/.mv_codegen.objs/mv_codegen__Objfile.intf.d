lib/codegen/objfile.mli: Buffer Format
