lib/isa/encode.ml: Array Bytes Char Insn Int32 Int64 List Printf
