lib/isa/insn.ml: Printf
