lib/isa/insn.mli:
