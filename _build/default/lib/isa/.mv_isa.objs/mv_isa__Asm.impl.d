lib/isa/asm.ml: Buffer Bytes Char Decode Format Insn Printf
