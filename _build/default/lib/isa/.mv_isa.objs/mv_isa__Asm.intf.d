lib/isa/asm.mli: Bytes Format Insn
