lib/isa/decode.ml: Bytes Char Insn Int32 Int64 List Printf
