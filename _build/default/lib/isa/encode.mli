(** Binary encoder for the virtual ISA (little-endian operand fields), plus
    the in-place field rewriting used by the multiverse runtime to retarget
    call sites. *)

exception Encode_error of string

(** Encode to exactly [Insn.size insn] bytes; validates registers,
    immediate ranges, and memory widths. *)
val encode : Insn.t -> bytes

(** Encode a sequence; returns the concatenation and each instruction's
    offset. *)
val encode_seq : Insn.t list -> bytes * int array

(** Rewrite the rel32 of the [Call]/[Jmp] at [off] to transfer to absolute
    [target]; rejects other opcodes. *)
val patch_rel32 : Bytes.t -> off:int -> target:int -> unit

(** Absolute target of the [Call]/[Jmp] at [off]. *)
val read_rel32_target : Bytes.t -> off:int -> int
