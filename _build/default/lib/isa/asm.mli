(** Disassembler / pretty-printer for the virtual ISA. *)

val pp_insn : Format.formatter -> Insn.t -> unit
val insn_to_string : Insn.t -> string

(** Disassemble [len] bytes at [off].  pc-relative targets are annotated
    with their absolute address and, via [resolve], a symbol name.
    Undecodable bytes (e.g. residue after a patched-over prologue) stop the
    listing gracefully. *)
val disassemble :
  ?resolve:(int -> string option) -> Bytes.t -> off:int -> len:int -> string
