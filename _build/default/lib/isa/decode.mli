(** Binary decoder for the virtual ISA: the inverse of {!Encode.encode}.
    The machine simulator decodes through a cache modeling the instruction
    cache, which is why the runtime flushes after patching. *)

exception Decode_error of string * int  (** message and offset *)

(** Decode the instruction at [off]; returns it with its encoded size. *)
val decode : Bytes.t -> off:int -> Insn.t * int

(** Decode a whole range into an [(offset, instruction)] listing. *)
val decode_range : Bytes.t -> off:int -> len:int -> (int * Insn.t) list
