(** The static linker.

    Same-named sections of all input objects are concatenated — this is how
    the multiverse descriptor arrays from separate translation units become
    one contiguous array in the image (paper Section 5).  Relocations are
    ELF-style: absolute fields receive [S + A], pc-relative fields
    [S + A - P]. *)

module Objfile = Mv_codegen.Objfile

exception Link_error of string

(** Base address of the text segment (0x1000). *)
val text_base : int

val align_up : int -> int -> int

(** Link the objects into a runnable image of [mem_size] bytes (default
    4 MiB): place sections, build the global symbol table, apply
    relocations, and set page protections (text r-x, the rest rw-). *)
val link : ?mem_size:int -> Objfile.t list -> Image.t
