lib/link/image.mli: Bytes Hashtbl Mv_codegen
