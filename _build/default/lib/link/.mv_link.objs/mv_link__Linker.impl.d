lib/link/linker.ml: Array Bytes Hashtbl Image Int32 Int64 List Mv_codegen Printf
