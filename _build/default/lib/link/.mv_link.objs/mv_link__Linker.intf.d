lib/link/linker.mli: Image Mv_codegen
