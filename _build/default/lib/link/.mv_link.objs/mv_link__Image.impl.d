lib/link/image.ml: Array Bytes Char Hashtbl Int32 Int64 List Mv_codegen Option Printf
