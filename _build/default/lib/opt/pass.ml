(* Pass manager: runs the optimization pipeline to a fixpoint.  Variant
   generation calls [optimize_fn] on every clone after constant substitution,
   mirroring the paper's "value replacement before the compiler's
   optimization passes" (Section 3). *)

module Ir = Mv_ir.Ir

type pass = { name : string; run : Ir.fn -> bool }

let default_pipeline =
  [
    { name = "const_prop"; run = Const_prop.run };
    { name = "branch_fold"; run = Branch_fold.run };
    { name = "simplify_cfg"; run = Simplify_cfg.run };
    { name = "dce"; run = Dce.run };
  ]

(** Run the pipeline until no pass reports a change (bounded, as a safety
    net against oscillating rewrites). *)
let optimize_fn ?(max_rounds = 32) (fn : Ir.fn) : unit =
  let rec go round =
    if round < max_rounds then begin
      let changed =
        List.fold_left (fun acc p -> p.run fn || acc) false default_pipeline
      in
      if changed then go (round + 1)
    end
  in
  go 0

let optimize_prog (p : Ir.prog) : unit = List.iter optimize_fn p.Ir.p_fns
