(** Control-flow graph cleanup: unreachable-block removal, empty-block
    forwarding, and straight-line merging.  The entry block keeps its
    position at the head of the block list. *)

val remove_unreachable : Mv_ir.Ir.fn -> bool
val skip_empty : Mv_ir.Ir.fn -> bool
val merge_straight_line : Mv_ir.Ir.fn -> bool

(** All of the above, in order; [true] if anything changed. *)
val run : Mv_ir.Ir.fn -> bool
