(** Fold conditional branches with constant conditions (and branches whose
    arms coincide).  Together with constant propagation this performs the
    dead-branch elimination that makes specialized multiverse variants
    branch-free (paper Figure 1.C). *)

val run : Mv_ir.Ir.fn -> bool
