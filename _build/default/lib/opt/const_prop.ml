(* Block-local constant and copy propagation with algebraic simplification.
   This is the pass that turns a specialized variant (where configuration
   switch reads have been replaced by constants) into straight-line code:
   propagated constants reach the branch terminators, which [Branch_fold]
   then folds away. *)

module Ir = Mv_ir.Ir

(** Fold a binary operation over constants.  Division and modulo by zero are
    left un-folded so the trap survives to run time. *)
let fold_binop op a b =
  match op with
  | (Ir.Div | Ir.Mod) when b = 0 -> None
  | _ -> Some (Mv_ir.Interp.eval_binop op a b)

let fold_unop = Mv_ir.Interp.eval_unop

(** Algebraic identities on one constant operand. *)
let simplify_binop op a b =
  match op, a, b with
  | Ir.Add, Ir.Imm 0, x | Ir.Add, x, Ir.Imm 0 -> Some (`Op x)
  | Ir.Sub, x, Ir.Imm 0 -> Some (`Op x)
  | Ir.Mul, Ir.Imm 1, x | Ir.Mul, x, Ir.Imm 1 -> Some (`Op x)
  | Ir.Mul, Ir.Imm 0, _ | Ir.Mul, _, Ir.Imm 0 -> Some (`Op (Ir.Imm 0))
  | Ir.Div, x, Ir.Imm 1 -> Some (`Op x)
  | Ir.Band, Ir.Imm 0, _ | Ir.Band, _, Ir.Imm 0 -> Some (`Op (Ir.Imm 0))
  | Ir.Bor, Ir.Imm 0, x | Ir.Bor, x, Ir.Imm 0 -> Some (`Op x)
  | Ir.Bxor, Ir.Imm 0, x | Ir.Bxor, x, Ir.Imm 0 -> Some (`Op x)
  | Ir.Shl, x, Ir.Imm 0 | Ir.Shr, x, Ir.Imm 0 -> Some (`Op x)
  | _ -> None

type facts = (Ir.reg, Ir.operand) Hashtbl.t

(** Forget all facts about [r] and all facts that mention [r] as a source. *)
let invalidate (facts : facts) r =
  Hashtbl.remove facts r;
  let stale =
    Hashtbl.fold
      (fun d src acc -> match src with Ir.Reg s when s = r -> d :: acc | _ -> acc)
      facts []
  in
  List.iter (Hashtbl.remove facts) stale

let subst (facts : facts) (op : Ir.operand) : Ir.operand =
  match op with
  | Ir.Imm _ -> op
  | Ir.Reg r -> ( match Hashtbl.find_opt facts r with Some v -> v | None -> op)

(** Propagate within one block.  Returns [true] if anything changed. *)
let run_block (b : Ir.block) : bool =
  let changed = ref false in
  let facts : facts = Hashtbl.create 16 in
  let rewrite i =
    let i' = Ir.map_instr_operands (subst facts) i in
    if i' <> i then changed := true;
    (* compute the new fact produced by the rewritten instruction *)
    let folded =
      match i' with
      | Ir.Ibin (op, d, Ir.Imm a, Ir.Imm b) -> (
          match fold_binop op a b with
          | Some v -> Some (Ir.Imov (d, Ir.Imm v))
          | None -> None)
      | Ir.Ibin (op, d, a, b) -> (
          match simplify_binop op a b with
          | Some (`Op x) -> Some (Ir.Imov (d, x))
          | None -> None)
      | Ir.Iun (op, d, Ir.Imm a) -> Some (Ir.Imov (d, Ir.Imm (fold_unop op a)))
      | _ -> None
    in
    let i' =
      match folded with
      | Some f ->
          changed := true;
          f
      | None -> i'
    in
    (match Ir.instr_def i' with
    | Some d -> (
        invalidate facts d;
        match i' with
        | Ir.Imov (_, (Ir.Imm _ as src)) -> Hashtbl.replace facts d src
        | Ir.Imov (_, (Ir.Reg s as src)) when s <> d -> Hashtbl.replace facts d src
        | _ -> ())
    | None -> ());
    i'
  in
  b.b_instrs <- List.map rewrite b.b_instrs;
  (* also rewrite the terminator with end-of-block facts *)
  let term' =
    match b.b_term with
    | Ir.Tbr (c, t, f) -> Ir.Tbr (subst facts c, t, f)
    | Ir.Tret (Some v) -> Ir.Tret (Some (subst facts v))
    | (Ir.Tjmp _ | Ir.Tret None) as t -> t
  in
  if term' <> b.b_term then begin
    b.b_term <- term';
    changed := true
  end;
  !changed

let run (fn : Ir.fn) : bool =
  List.fold_left (fun acc b -> run_block b || acc) false fn.fn_blocks
