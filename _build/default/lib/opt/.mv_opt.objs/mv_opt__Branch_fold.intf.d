lib/opt/branch_fold.mli: Mv_ir
