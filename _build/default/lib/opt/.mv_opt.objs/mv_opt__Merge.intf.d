lib/opt/merge.mli: Mv_ir
