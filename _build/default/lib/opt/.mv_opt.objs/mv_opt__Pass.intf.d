lib/opt/pass.mli: Mv_ir
