lib/opt/const_prop.mli: Mv_ir
