lib/opt/const_prop.ml: Hashtbl List Mv_ir
