lib/opt/branch_fold.ml: List Mv_ir
