lib/opt/pass.ml: Branch_fold Const_prop Dce List Mv_ir Simplify_cfg
