lib/opt/merge.ml: Buffer Hashtbl List Minic Mv_ir Printf String
