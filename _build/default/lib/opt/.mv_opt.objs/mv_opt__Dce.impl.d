lib/opt/dce.ml: Int List Map Mv_ir Option Set
