lib/opt/simplify_cfg.mli: Mv_ir
