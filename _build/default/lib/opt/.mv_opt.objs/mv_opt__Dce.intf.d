lib/opt/dce.mli: Map Mv_ir Set
