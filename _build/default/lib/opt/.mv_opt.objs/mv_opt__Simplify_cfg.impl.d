lib/opt/simplify_cfg.ml: Hashtbl Int List Map Mv_ir Option Printf
