(* Control-flow graph cleanup:
   - removal of blocks unreachable from the entry,
   - skipping of empty forwarding blocks (no instructions, unconditional jump),
   - merging of a block into its unique predecessor when that predecessor
     jumps unconditionally to it.
   The entry block always keeps its position at the head of the list. *)

module Ir = Mv_ir.Ir

module Imap = Map.Make (Int)

let block_map (fn : Ir.fn) =
  List.fold_left (fun m (b : Ir.block) -> Imap.add b.b_id b m) Imap.empty fn.fn_blocks

let reachable (fn : Ir.fn) =
  let blocks = block_map fn in
  let seen = Hashtbl.create 16 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match Imap.find_opt id blocks with
      | Some b -> List.iter visit (Ir.successors b.b_term)
      | None -> invalid_arg (Printf.sprintf "%s: missing block %d" fn.fn_name id)
    end
  in
  (match fn.fn_blocks with
  | entry :: _ -> visit entry.b_id
  | [] -> ());
  seen

let remove_unreachable (fn : Ir.fn) : bool =
  let seen = reachable fn in
  let before = List.length fn.fn_blocks in
  fn.fn_blocks <- List.filter (fun (b : Ir.block) -> Hashtbl.mem seen b.b_id) fn.fn_blocks;
  List.length fn.fn_blocks <> before

(** Retarget jumps through empty blocks that only forward to another block. *)
let skip_empty (fn : Ir.fn) : bool =
  let changed = ref false in
  let forward = Hashtbl.create 16 in
  (match fn.fn_blocks with
  | entry :: rest ->
      List.iter
        (fun (b : Ir.block) ->
          match b.b_instrs, b.b_term with
          | [], Ir.Tjmp t when t <> b.b_id -> Hashtbl.replace forward b.b_id t
          | _ -> ())
        rest;
      ignore entry
  | [] -> ());
  (* resolve chains, guarding against cycles of empty blocks *)
  let rec resolve ?(fuel = 64) id =
    if fuel = 0 then id
    else
      match Hashtbl.find_opt forward id with
      | Some t -> resolve ~fuel:(fuel - 1) t
      | None -> id
  in
  List.iter
    (fun (b : Ir.block) ->
      let retarget t =
        let t' = resolve t in
        if t' <> t then changed := true;
        t'
      in
      b.b_term <-
        (match b.b_term with
        | Ir.Tjmp t -> Ir.Tjmp (retarget t)
        | Ir.Tbr (c, t, f) -> Ir.Tbr (c, retarget t, retarget f)
        | Ir.Tret _ as r -> r))
    fn.fn_blocks;
  !changed

(** Merge [b -> succ] pairs where [b] ends in [Tjmp succ] and [succ] has no
    other predecessor (and is not the entry block). *)
let merge_straight_line (fn : Ir.fn) : bool =
  let changed = ref false in
  let pred_count = Hashtbl.create 16 in
  let bump id = Hashtbl.replace pred_count id (1 + Option.value ~default:0 (Hashtbl.find_opt pred_count id)) in
  List.iter (fun (b : Ir.block) -> List.iter bump (Ir.successors b.b_term)) fn.fn_blocks;
  let entry_id = match fn.fn_blocks with b :: _ -> b.b_id | [] -> -1 in
  let blocks = block_map fn in
  let merged = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      if not (Hashtbl.mem merged b.b_id) then begin
        let rec absorb () =
          match b.b_term with
          | Ir.Tjmp t
            when t <> b.b_id && t <> entry_id
                 && Hashtbl.find_opt pred_count t = Some 1
                 && not (Hashtbl.mem merged t) -> (
              match Imap.find_opt t blocks with
              | Some succ ->
                  b.b_instrs <- b.b_instrs @ succ.b_instrs;
                  b.b_term <- succ.b_term;
                  Hashtbl.replace merged t ();
                  changed := true;
                  absorb ()
              | None -> ())
          | _ -> ()
        in
        absorb ()
      end)
    fn.fn_blocks;
  fn.fn_blocks <- List.filter (fun (b : Ir.block) -> not (Hashtbl.mem merged b.b_id)) fn.fn_blocks;
  !changed

let run (fn : Ir.fn) : bool =
  let c1 = skip_empty fn in
  let c2 = remove_unreachable fn in
  let c3 = merge_straight_line fn in
  let c4 = remove_unreachable fn in
  c1 || c2 || c3 || c4
