(** Block-local constant and copy propagation with algebraic
    simplification.  This pass turns a constant-substituted multiverse
    clone into straight-line code: propagated constants reach the branch
    terminators, which {!Branch_fold} then folds away. *)

(** Fold a binary operation over constants; [None] for division/modulo by
    zero (the trap must survive to run time). *)
val fold_binop : Mv_ir.Ir.binop -> int -> int -> int option

val fold_unop : Mv_ir.Ir.unop -> int -> int

(** Algebraic identities on one constant operand (x+0, x*1, x&0, ...). *)
val simplify_binop :
  Mv_ir.Ir.binop ->
  Mv_ir.Ir.operand ->
  Mv_ir.Ir.operand ->
  [ `Op of Mv_ir.Ir.operand ] option

(** Run over one function; [true] if anything changed. *)
val run : Mv_ir.Ir.fn -> bool
