(* Liveness-based dead-code elimination over the whole CFG.  Instructions
   whose destination register is dead and which have no side effect are
   removed.  Together with constant propagation this erases the residue of a
   specialized configuration-switch read. *)

module Ir = Mv_ir.Ir

module Iset = Set.Make (Int)
module Imap = Map.Make (Int)

let operand_regs ops =
  List.filter_map (function Ir.Reg r -> Some r | Ir.Imm _ -> None) ops

let term_uses = function
  | Ir.Tbr (c, _, _) -> operand_regs [ c ]
  | Ir.Tret (Some v) -> operand_regs [ v ]
  | Ir.Tjmp _ | Ir.Tret None -> []

(** Compute live-in sets for every block by backward fixpoint. *)
let liveness (fn : Ir.fn) : Iset.t Imap.t =
  let live_in = ref Imap.empty in
  let get id = Option.value ~default:Iset.empty (Imap.find_opt id !live_in) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate in reverse order for faster convergence *)
    List.iter
      (fun (b : Ir.block) ->
        let live_out =
          List.fold_left
            (fun acc succ -> Iset.union acc (get succ))
            Iset.empty
            (Ir.successors b.b_term)
        in
        let live =
          List.fold_left
            (fun acc r -> Iset.add r acc)
            live_out (term_uses b.b_term)
        in
        let live =
          List.fold_right
            (fun i live ->
              let live =
                match Ir.instr_def i with Some d -> Iset.remove d live | None -> live
              in
              List.fold_left
                (fun acc op ->
                  match op with Ir.Reg r -> Iset.add r acc | Ir.Imm _ -> acc)
                live (Ir.instr_uses i))
            b.b_instrs live
        in
        if not (Iset.equal live (get b.b_id)) then begin
          live_in := Imap.add b.b_id live !live_in;
          changed := true
        end)
      (List.rev fn.fn_blocks)
  done;
  !live_in

let run (fn : Ir.fn) : bool =
  let live_in = liveness fn in
  let get id = Option.value ~default:Iset.empty (Imap.find_opt id live_in) in
  let changed = ref false in
  List.iter
    (fun (b : Ir.block) ->
      let live_out =
        List.fold_left
          (fun acc succ -> Iset.union acc (get succ))
          Iset.empty
          (Ir.successors b.b_term)
      in
      let live =
        List.fold_left (fun acc r -> Iset.add r acc) live_out (term_uses b.b_term)
      in
      (* walk backwards, dropping dead pure instructions *)
      let live = ref live in
      let keep =
        List.fold_right
          (fun i acc ->
            let dead =
              (not (Ir.instr_has_side_effect i))
              &&
              match Ir.instr_def i with
              | Some d -> not (Iset.mem d !live)
              | None -> true
            in
            if dead then begin
              changed := true;
              acc
            end
            else begin
              (* side-effecting instruction with a dead result: keep it but
                 drop the destination (e.g. an ignored call return value) *)
              let i =
                match Ir.instr_def i with
                | Some d when not (Iset.mem d !live) -> (
                    match i with
                    | Ir.Icall (Some _, f, args) ->
                        changed := true;
                        Ir.Icall (None, f, args)
                    | Ir.Icallp (Some _, f, args) ->
                        changed := true;
                        Ir.Icallp (None, f, args)
                    | Ir.Iintr (Some _, intr, args) ->
                        changed := true;
                        Ir.Iintr (None, intr, args)
                    | _ -> i)
                | Some _ | None -> i
              in
              (match Ir.instr_def i with
              | Some d -> live := Iset.remove d !live
              | None -> ());
              List.iter
                (fun op ->
                  match op with
                  | Ir.Reg r -> live := Iset.add r !live
                  | Ir.Imm _ -> ())
                (Ir.instr_uses i);
              i :: acc
            end)
          b.b_instrs []
      in
      b.b_instrs <- keep)
    fn.fn_blocks;
  !changed
