(** Liveness-based dead-code elimination.  Pure instructions with dead
    destinations are removed; side-effecting instructions are kept but a
    dead result register is dropped (e.g. an ignored call return value). *)

module Iset : Set.S with type elt = int
module Imap : Map.S with type key = int

(** Registers read by a terminator. *)
val term_uses : Mv_ir.Ir.terminator -> Mv_ir.Ir.reg list

(** Live-in set per block (backward fixpoint). *)
val liveness : Mv_ir.Ir.fn -> Iset.t Imap.t

(** Run over one function; [true] if anything changed. *)
val run : Mv_ir.Ir.fn -> bool
