(** Pass manager: runs the optimization pipeline to a fixpoint.

    Variant generation calls {!optimize_fn} on every clone after constant
    substitution — the paper's "value replacement before the compiler's
    optimization passes" (Section 3), which is what specializes variants
    perfectly. *)

type pass = { name : string; run : Mv_ir.Ir.fn -> bool }

(** Constant propagation, branch folding, CFG simplification, DCE. *)
val default_pipeline : pass list

(** Iterate the pipeline until no pass reports a change (bounded by
    [max_rounds] as a safety net). *)
val optimize_fn : ?max_rounds:int -> Mv_ir.Ir.fn -> unit

val optimize_prog : Mv_ir.Ir.prog -> unit
