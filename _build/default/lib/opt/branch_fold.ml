(* Fold conditional branches whose condition is a constant.  Combined with
   constant propagation this performs the dead-branch elimination that makes
   specialized multiverse variants branch-free (Figure 1.C in the paper). *)

module Ir = Mv_ir.Ir

let run (fn : Ir.fn) : bool =
  let changed = ref false in
  List.iter
    (fun (b : Ir.block) ->
      match b.b_term with
      | Ir.Tbr (Ir.Imm c, t, f) ->
          b.b_term <- Ir.Tjmp (if c <> 0 then t else f);
          changed := true
      | Ir.Tbr (_, t, f) when t = f ->
          b.b_term <- Ir.Tjmp t;
          changed := true
      | Ir.Tbr _ | Ir.Tjmp _ | Ir.Tret _ -> ())
    fn.fn_blocks;
  !changed
