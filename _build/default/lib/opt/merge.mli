(** Structural equality of function bodies up to block order and register
    naming — the merge step of multiverse variant generation: clones that
    become identical after optimization are deduplicated, as in the paper's
    [multi.A=0.B=01] example (Figure 2). *)

(** Canonical printable form: blocks in reverse postorder, block ids
    replaced by RPO indices, registers renamed in first-occurrence order
    (parameters first). *)
val canonical_form : Mv_ir.Ir.fn -> string

val equal_bodies : Mv_ir.Ir.fn -> Mv_ir.Ir.fn -> bool
val body_hash : Mv_ir.Ir.fn -> int
