(* Lowering from the Mini-C AST to the IR.  Short-circuit operators and the
   conditional expression become control flow; local variables become virtual
   registers; reads and writes of globals become [Iloadg]/[Istoreg] so that
   the multiverse variant generator can later substitute constants for
   configuration-switch reads. *)

module Ast = Minic.Ast
module Tc = Minic.Typecheck

exception Error of string * Ast.loc

let err loc fmt = Format.kasprintf (fun m -> raise (Error (m, loc))) fmt

module Smap = Map.Make (String)
module Esmap = Tc.Smap

type ctx = {
  env : Tc.env;
  mutable blocks : Ir.block list;  (** reverse order *)
  mutable cur : Ir.block option;
  mutable next_block : int;
  mutable next_reg : int;
  mutable locals : Ir.reg Smap.t list;
  mutable loops : (int option * int) list;
      (** (continue target if any, break target); a [switch] pushes an entry
          with no continue target of its own *)
}

let fresh_reg ctx =
  let r = ctx.next_reg in
  ctx.next_reg <- r + 1;
  r

let fresh_block ctx =
  let id = ctx.next_block in
  ctx.next_block <- id + 1;
  id

(** Begin emitting into block [id]. *)
let start_block ctx id =
  assert (ctx.cur = None);
  ctx.cur <- Some { Ir.b_id = id; b_instrs = []; b_term = Ir.Tret None }

let rec emit ctx i =
  match ctx.cur with
  | Some b -> b.b_instrs <- i :: b.b_instrs
  | None ->
      (* unreachable code (e.g. after a return): emit into a throwaway block *)
      start_block ctx (fresh_block ctx);
      emit ctx i

let finish ctx term =
  match ctx.cur with
  | Some b ->
      b.b_instrs <- List.rev b.b_instrs;
      b.b_term <- term;
      ctx.blocks <- b :: ctx.blocks;
      ctx.cur <- None
  | None -> ()

let push_scope ctx = ctx.locals <- Smap.empty :: ctx.locals

let pop_scope ctx =
  match ctx.locals with
  | _ :: rest -> ctx.locals <- rest
  | [] -> invalid_arg "pop_scope"

let add_local ctx name r =
  match ctx.locals with
  | scope :: rest -> ctx.locals <- Smap.add name r scope :: rest
  | [] -> invalid_arg "add_local"

let find_local ctx name = List.find_map (fun s -> Smap.find_opt name s) ctx.locals

let global_info ctx name = Esmap.find_opt name ctx.env.Tc.globals

let global_width ctx name =
  match global_info ctx name with
  | Some gi -> Ast.ty_width gi.Tc.gi_ty
  | None -> 8

let is_fnptr_global ctx name =
  match global_info ctx name with
  | Some gi -> gi.Tc.gi_ty = Ast.Tfnptr
  | None -> false

let is_array_global ctx name =
  match global_info ctx name with
  | Some gi -> gi.Tc.gi_array <> None
  | None -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec lower_expr ctx (e : Ast.expr) : Ir.operand =
  match e.edesc with
  | Ast.Eint n -> Ir.Imm n
  | Ast.Evar name -> (
      match find_local ctx name with
      | Some r -> Ir.Reg r
      | None ->
          let r = fresh_reg ctx in
          if is_array_global ctx name then begin
            (* arrays decay to their base address *)
            emit ctx (Ir.Iaddr (r, name));
            Ir.Reg r
          end
          else begin
            emit ctx (Ir.Iloadg (r, name, global_width ctx name));
            Ir.Reg r
          end)
  | Ast.Eunop (op, a) ->
      let a = lower_expr ctx a in
      let r = fresh_reg ctx in
      let op =
        match op with Ast.Neg -> Ir.Neg | Ast.Lnot -> Ir.Lnot | Ast.Bnot -> Ir.Bnot
      in
      emit ctx (Ir.Iun (op, r, a));
      Ir.Reg r
  | Ast.Ebinop (Ast.Land, a, b) -> lower_short_circuit ctx ~is_and:true a b
  | Ast.Ebinop (Ast.Lor, a, b) -> lower_short_circuit ctx ~is_and:false a b
  | Ast.Ebinop (op, a, b) ->
      let a = lower_expr ctx a in
      let b = lower_expr ctx b in
      let r = fresh_reg ctx in
      emit ctx (Ir.Ibin (lower_binop e.eloc op, r, a, b));
      Ir.Reg r
  | Ast.Econd (c, a, b) ->
      let r = fresh_reg ctx in
      let c = lower_expr ctx c in
      let bb_t = fresh_block ctx and bb_f = fresh_block ctx and bb_j = fresh_block ctx in
      finish ctx (Ir.Tbr (c, bb_t, bb_f));
      start_block ctx bb_t;
      let va = lower_expr ctx a in
      emit ctx (Ir.Imov (r, va));
      finish ctx (Ir.Tjmp bb_j);
      start_block ctx bb_f;
      let vb = lower_expr ctx b in
      emit ctx (Ir.Imov (r, vb));
      finish ctx (Ir.Tjmp bb_j);
      start_block ctx bb_j;
      Ir.Reg r
  | Ast.Ecall (name, args) ->
      let args = List.map (lower_expr ctx) args in
      if is_fnptr_global ctx name then begin
        let r = fresh_reg ctx in
        emit ctx (Ir.Icallp (Some r, name, args));
        Ir.Reg r
      end
      else begin
        let has_result =
          match Esmap.find_opt name ctx.env.Tc.funcs with
          | Some fi -> fi.Tc.fi_ret <> Ast.Tvoid
          | None -> true
        in
        if has_result then begin
          let r = fresh_reg ctx in
          emit ctx (Ir.Icall (Some r, name, args));
          Ir.Reg r
        end
        else begin
          emit ctx (Ir.Icall (None, name, args));
          Ir.Imm 0
        end
      end
  | Ast.Eintrinsic (i, args) ->
      let args = List.map (lower_expr ctx) args in
      if Ast.intrinsic_has_result i then begin
        let r = fresh_reg ctx in
        emit ctx (Ir.Iintr (Some r, i, args));
        Ir.Reg r
      end
      else begin
        emit ctx (Ir.Iintr (None, i, args));
        Ir.Imm 0
      end
  | Ast.Eindex (a, i) ->
      let addr, width = lower_element_addr ctx a i in
      let r = fresh_reg ctx in
      emit ctx (Ir.Iload (r, addr, width));
      Ir.Reg r
  | Ast.Ederef p ->
      let p = lower_expr ctx p in
      let r = fresh_reg ctx in
      emit ctx (Ir.Iload (r, p, 8));
      Ir.Reg r
  | Ast.Ederefw (w, p) ->
      let p = lower_expr ctx p in
      let r = fresh_reg ctx in
      emit ctx (Ir.Iload (r, p, w));
      Ir.Reg r
  | Ast.Eaddr_of_fun name | Ast.Eaddr_of_var name ->
      let r = fresh_reg ctx in
      emit ctx (Ir.Iaddr (r, name));
      Ir.Reg r

and lower_binop loc = function
  | Ast.Add -> Ir.Add | Ast.Sub -> Ir.Sub | Ast.Mul -> Ir.Mul
  | Ast.Div -> Ir.Div | Ast.Mod -> Ir.Mod | Ast.Band -> Ir.Band
  | Ast.Bor -> Ir.Bor | Ast.Bxor -> Ir.Bxor | Ast.Shl -> Ir.Shl
  | Ast.Shr -> Ir.Shr | Ast.Eq -> Ir.Eq | Ast.Ne -> Ir.Ne
  | Ast.Lt -> Ir.Lt | Ast.Le -> Ir.Le | Ast.Gt -> Ir.Gt | Ast.Ge -> Ir.Ge
  | Ast.Land | Ast.Lor -> err loc "short-circuit operator not lowered"

and lower_short_circuit ctx ~is_and a b =
  let r = fresh_reg ctx in
  let va = lower_expr ctx a in
  let bb_rhs = fresh_block ctx and bb_skip = fresh_block ctx and bb_j = fresh_block ctx in
  if is_and then finish ctx (Ir.Tbr (va, bb_rhs, bb_skip))
  else finish ctx (Ir.Tbr (va, bb_skip, bb_rhs));
  start_block ctx bb_rhs;
  let vb = lower_expr ctx b in
  emit ctx (Ir.Ibin (Ir.Ne, r, vb, Ir.Imm 0));
  finish ctx (Ir.Tjmp bb_j);
  start_block ctx bb_skip;
  emit ctx (Ir.Imov (r, Ir.Imm (if is_and then 0 else 1)));
  finish ctx (Ir.Tjmp bb_j);
  start_block ctx bb_j;
  Ir.Reg r

(** Compute the address and element width for [a[i]]. *)
and lower_element_addr ctx (a : Ast.expr) (i : Ast.expr) : Ir.operand * int =
  let base, width =
    match a.edesc with
    | Ast.Evar name when find_local ctx name = None && is_array_global ctx name ->
        let r = fresh_reg ctx in
        emit ctx (Ir.Iaddr (r, name));
        (Ir.Reg r, global_width ctx name)
    | _ -> (lower_expr ctx a, 8)
  in
  let idx = lower_expr ctx i in
  let scaled =
    match idx, width with
    | Ir.Imm n, w -> Ir.Imm (n * w)
    | Ir.Reg _, 1 -> idx
    | Ir.Reg _, w ->
        let r = fresh_reg ctx in
        emit ctx (Ir.Ibin (Ir.Mul, r, idx, Ir.Imm w));
        Ir.Reg r
  in
  let addr = fresh_reg ctx in
  emit ctx (Ir.Ibin (Ir.Add, addr, base, scaled));
  (Ir.Reg addr, width)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt ctx (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Sdecl (name, _ty, init) ->
      let r = fresh_reg ctx in
      (match init with
      | Some e ->
          let v = lower_expr ctx e in
          emit ctx (Ir.Imov (r, v))
      | None -> emit ctx (Ir.Imov (r, Ir.Imm 0)));
      add_local ctx name r
  | Ast.Sassign (Ast.Lvar name, e) -> (
      let v = lower_expr ctx e in
      match find_local ctx name with
      | Some r -> emit ctx (Ir.Imov (r, v))
      | None -> emit ctx (Ir.Istoreg (name, v, global_width ctx name)))
  | Ast.Sassign (Ast.Lindex (a, i), e) ->
      let addr, width = lower_element_addr ctx a i in
      let v = lower_expr ctx e in
      emit ctx (Ir.Istore (addr, v, width))
  | Ast.Sassign (Ast.Lderef p, e) ->
      let p = lower_expr ctx p in
      let v = lower_expr ctx e in
      emit ctx (Ir.Istore (p, v, 8))
  | Ast.Sassign (Ast.Lderefw (w, p), e) ->
      let p = lower_expr ctx p in
      let v = lower_expr ctx e in
      emit ctx (Ir.Istore (p, v, w))
  | Ast.Sif (c, then_, else_) ->
      let vc = lower_expr ctx c in
      let bb_t = fresh_block ctx and bb_j = fresh_block ctx in
      let bb_f = if else_ = [] then bb_j else fresh_block ctx in
      finish ctx (Ir.Tbr (vc, bb_t, bb_f));
      start_block ctx bb_t;
      lower_block ctx then_;
      finish ctx (Ir.Tjmp bb_j);
      if else_ <> [] then begin
        start_block ctx bb_f;
        lower_block ctx else_;
        finish ctx (Ir.Tjmp bb_j)
      end;
      start_block ctx bb_j
  | Ast.Swhile (c, body) ->
      let bb_cond = fresh_block ctx and bb_body = fresh_block ctx in
      let bb_exit = fresh_block ctx in
      finish ctx (Ir.Tjmp bb_cond);
      start_block ctx bb_cond;
      let vc = lower_expr ctx c in
      finish ctx (Ir.Tbr (vc, bb_body, bb_exit));
      start_block ctx bb_body;
      ctx.loops <- (Some bb_cond, bb_exit) :: ctx.loops;
      lower_block ctx body;
      ctx.loops <- List.tl ctx.loops;
      finish ctx (Ir.Tjmp bb_cond);
      start_block ctx bb_exit
  | Ast.Sdo_while (body, c) ->
      let bb_body = fresh_block ctx and bb_cond = fresh_block ctx in
      let bb_exit = fresh_block ctx in
      finish ctx (Ir.Tjmp bb_body);
      start_block ctx bb_body;
      ctx.loops <- (Some bb_cond, bb_exit) :: ctx.loops;
      lower_block ctx body;
      ctx.loops <- List.tl ctx.loops;
      finish ctx (Ir.Tjmp bb_cond);
      start_block ctx bb_cond;
      let vc = lower_expr ctx c in
      finish ctx (Ir.Tbr (vc, bb_body, bb_exit));
      start_block ctx bb_exit
  | Ast.Sfor (init, cond, step, body) ->
      push_scope ctx;
      Option.iter (lower_stmt ctx) init;
      let bb_cond = fresh_block ctx and bb_body = fresh_block ctx in
      let bb_step = fresh_block ctx and bb_exit = fresh_block ctx in
      finish ctx (Ir.Tjmp bb_cond);
      start_block ctx bb_cond;
      (match cond with
      | Some c ->
          let vc = lower_expr ctx c in
          finish ctx (Ir.Tbr (vc, bb_body, bb_exit))
      | None -> finish ctx (Ir.Tjmp bb_body));
      start_block ctx bb_body;
      ctx.loops <- (Some bb_step, bb_exit) :: ctx.loops;
      lower_block ctx body;
      ctx.loops <- List.tl ctx.loops;
      finish ctx (Ir.Tjmp bb_step);
      start_block ctx bb_step;
      Option.iter (lower_stmt ctx) step;
      finish ctx (Ir.Tjmp bb_cond);
      pop_scope ctx;
      start_block ctx bb_exit
  | Ast.Sreturn e ->
      let v = Option.map (lower_expr ctx) e in
      finish ctx (Ir.Tret v)
  | Ast.Sexpr e ->
      let (_ : Ir.operand) = lower_expr ctx e in
      ()
  | Ast.Sbreak -> (
      match ctx.loops with
      | (_, bb_exit) :: _ -> finish ctx (Ir.Tjmp bb_exit)
      | [] -> err s.sloc "break outside of loop or switch")
  | Ast.Scontinue -> (
      (* continue skips enclosing switches and targets the nearest loop *)
      match List.find_opt (fun (cont, _) -> cont <> None) ctx.loops with
      | Some (Some bb_cont, _) -> finish ctx (Ir.Tjmp bb_cont)
      | Some (None, _) | None -> err s.sloc "continue outside of loop")
  | Ast.Sblock body -> lower_block ctx body
  | Ast.Sswitch (scrutinee, cases, default) ->
      (* a sequential test chain, as a compiler emits for sparse labels:
         each case group tests its labels against the scrutinee value and
         falls through to the next group; bodies exit to bb_exit.  There is
         no C fall-through between bodies (each body is closed). *)
      let v = lower_expr ctx scrutinee in
      (* pin the scrutinee in a register: case tests evaluate it repeatedly *)
      let r = fresh_reg ctx in
      emit ctx (Ir.Imov (r, v));
      let bb_exit = fresh_block ctx in
      ctx.loops <- (None, bb_exit) :: ctx.loops;
      let lower_group (labels, body) =
        let bb_body = fresh_block ctx and bb_next = fresh_block ctx in
        let rec test = function
          | [] -> finish ctx (Ir.Tjmp bb_next)
          | label :: rest ->
              let t = fresh_reg ctx in
              emit ctx (Ir.Ibin (Ir.Eq, t, Ir.Reg r, Ir.Imm label));
              if rest = [] then finish ctx (Ir.Tbr (Ir.Reg t, bb_body, bb_next))
              else begin
                let bb_more = fresh_block ctx in
                finish ctx (Ir.Tbr (Ir.Reg t, bb_body, bb_more));
                start_block ctx bb_more;
                test rest
              end
        in
        test labels;
        start_block ctx bb_body;
        lower_block ctx body;
        finish ctx (Ir.Tjmp bb_exit);
        start_block ctx bb_next
      in
      List.iter lower_group cases;
      (match default with
      | Some body -> lower_block ctx body
      | None -> ());
      ctx.loops <- List.tl ctx.loops;
      finish ctx (Ir.Tjmp bb_exit);
      start_block ctx bb_exit

and lower_block ctx body =
  push_scope ctx;
  List.iter (lower_stmt ctx) body;
  pop_scope ctx

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let lower_fn env (f : Ast.func) body : Ir.fn =
  let ctx =
    { env; blocks = []; cur = None; next_block = 0; next_reg = 0; locals = [];
      loops = [] }
  in
  let entry = fresh_block ctx in
  push_scope ctx;
  let params =
    List.map
      (fun (name, _ty) ->
        let r = fresh_reg ctx in
        add_local ctx name r;
        r)
      f.f_params
  in
  start_block ctx entry;
  lower_block ctx body;
  (* fall-through return for functions whose control reaches the end *)
  finish ctx (Ir.Tret (if f.f_ret = Ast.Tvoid then None else Some (Ir.Imm 0)));
  pop_scope ctx;
  let blocks =
    List.sort (fun a b -> compare a.Ir.b_id b.Ir.b_id) (List.rev ctx.blocks)
  in
  {
    Ir.fn_name = f.f_name;
    fn_params = params;
    fn_blocks = blocks;
    fn_nregs = ctx.next_reg;
    fn_noinline = Ast.is_noinline f.f_attrs || Ast.is_multiversed f.f_attrs;
    fn_conv = (if Ast.is_saveall f.f_attrs then Ir.Saveall else Ir.Standard);
    fn_multiverse = Ast.is_multiversed f.f_attrs;
    fn_bind = Ast.attr_bind f.f_attrs;
  }

let lower_global env (g : Ast.global) : Ir.global =
  let enum_items =
    match g.g_ty with
    | Ast.Tenum e ->
        Option.map (List.map snd) (Esmap.find_opt e env.Tc.enums)
    | _ -> None
  in
  {
    Ir.gl_name = g.g_name;
    gl_width = Ast.ty_width g.g_ty;
    gl_signed = Ast.ty_signed g.g_ty;
    gl_count = Option.value g.g_array ~default:1;
    gl_init = g.g_init;
    gl_fn_init = g.g_fn_init;
    gl_multiverse = Ast.is_multiversed g.g_attrs;
    gl_values = Ast.attr_values g.g_attrs;
    gl_is_fnptr = g.g_ty = Ast.Tfnptr;
    gl_enum_items = enum_items;
  }

(** Lower a checked translation unit. *)
let lower_tunit (tu : Ast.tunit) (env : Tc.env) : Ir.prog =
  let globals = ref [] and fns = ref [] in
  let extern_fns = ref [] and extern_globals = ref [] in
  List.iter
    (fun decl ->
      match decl with
      | Ast.Denum _ -> ()
      | Ast.Dglobal g ->
          if g.g_extern then extern_globals := lower_global env g :: !extern_globals
          else globals := lower_global env g :: !globals
      | Ast.Dfunc f -> (
          match f.f_body with
          | Some body -> fns := lower_fn env f body :: !fns
          | None ->
              extern_fns := (f.f_name, Ast.is_multiversed f.f_attrs) :: !extern_fns))
    tu;
  {
    Ir.p_globals = List.rev !globals;
    p_fns = List.rev !fns;
    p_extern_fns = List.rev !extern_fns;
    p_extern_globals = List.rev !extern_globals;
  }

(** Front-end convenience: source text to IR (raises on errors). *)
let lower_string src =
  let tu, env, warnings = Tc.check_string src in
  (lower_tunit tu env, warnings)
