lib/ir/interp.ml: Array Bytes Char Hashtbl Int32 Int64 Ir List Minic Option Printf
