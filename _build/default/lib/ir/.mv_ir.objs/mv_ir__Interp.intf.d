lib/ir/interp.mli: Bytes Hashtbl Ir
