lib/ir/lower.mli: Ir Minic
