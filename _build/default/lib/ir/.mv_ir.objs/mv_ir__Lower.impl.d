lib/ir/lower.ml: Format Ir List Map Minic Option String
