lib/ir/ir.ml: Format Hashtbl List Minic Printf
