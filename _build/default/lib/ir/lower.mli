(** Lowering from the Mini-C AST to the IR.

    Short-circuit operators and conditional expressions become control
    flow, locals become virtual registers, and global accesses become
    [Iloadg]/[Istoreg] — keeping switch reads visible as the substitution
    points for multiverse variant generation (paper Section 3). *)

exception Error of string * Minic.Ast.loc

(** Lower one function body.  [env] resolves globals, functions and enum
    constants. *)
val lower_fn :
  Minic.Typecheck.env -> Minic.Ast.func -> Minic.Ast.stmt list -> Ir.fn

val lower_global : Minic.Typecheck.env -> Minic.Ast.global -> Ir.global

(** Lower a checked translation unit. *)
val lower_tunit : Minic.Ast.tunit -> Minic.Typecheck.env -> Ir.prog

(** Front end in one step: parse, typecheck, lower.  Returns the program
    and the front-end warnings.  Raises the front-end exceptions on
    errors. *)
val lower_string : string -> Ir.prog * Minic.Typecheck.diagnostic list
