(** Reference interpreter for the IR.

    This defines the language semantics that the whole back end (code
    generator, linker, machine) and the multiverse transformation
    (specialized variants must behave like the generic function) are
    differentially tested against. *)

exception Halted
exception Fault of string
exception Step_limit_exceeded

val word_width : int

(** Truncate to [width] bytes with the given signedness interpretation. *)
val truncate : width:int -> signed:bool -> int -> int

type layout = { l_addr : (string, int) Hashtbl.t; l_end : int }

(** Assign data addresses to globals (8-byte aligned slots, mirroring the
    linker's layout rules). *)
val layout_globals : ?base:int -> Ir.global list -> layout

type t = {
  mem : Bytes.t;
  globals : (string, Ir.global * int) Hashtbl.t;
  fns : (string, Ir.fn) Hashtbl.t;
  fn_addr : (string, int) Hashtbl.t;
  addr_fn : (int, string) Hashtbl.t;
  mutable irq_enabled : bool;
  mutable hypercalls : int;
  mutable steps : int;
  mutable step_limit : int;
  heap_base : int;
  stack_base : int;
}

val fn_addr_base : int

(** Build an interpreter for a set of translation units; extern references
    must resolve to a definition in some unit.  Globals are initialized. *)
val create : ?mem_size:int -> ?step_limit:int -> Ir.prog list -> t

val load : t -> int -> int -> int
val store : t -> int -> int -> int -> unit
val global_addr : t -> string -> int

(** Read a global; sub-word values are zero-extended, matching the
    machine's [Loadg]. *)
val read_global : t -> string -> int

val write_global : t -> string -> int -> unit
val symbol_addr : t -> string -> int

(** Shared binary/unary operator semantics (also used by constant
    folding). *)
val eval_binop : Ir.binop -> int -> int -> int

val eval_unop : Ir.unop -> int -> int

(** Call a function by name; raises on faults or the step limit. *)
val call : t -> string -> int list -> int

(** Like {!call} but converts a [__halt] into a normal 0 return. *)
val run : t -> string -> int list -> int
