(** Hand-written lexer for Mini-C: line/block comments, decimal and
    hexadecimal integers, character and string literals, with source
    locations for diagnostics. *)

exception Error of string * Ast.loc

type state

val make : string -> state

(** Lex one token, with the location where it started. *)
val next : state -> Token.t * Ast.loc

(** Lex a whole source string; the last element is [EOF]. *)
val tokenize : string -> (Token.t * Ast.loc) list
