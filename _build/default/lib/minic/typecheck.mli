(** Semantic analysis for Mini-C: name resolution, arity checking, and the
    multiverse attribute rules of paper Sections 2-3 — including the
    warning when a multiversed function writes a configuration switch. *)

exception Error of string * Ast.loc

type severity = Warning | Error_

type diagnostic = { message : string; loc : Ast.loc; severity : severity }

module Smap : Map.S with type key = string

type global_info = {
  gi_ty : Ast.ty;
  gi_attrs : Ast.attr list;
  gi_array : int option;
  gi_init : int option;
  gi_fn_init : string option;
  gi_extern : bool;
}

type func_info = {
  fi_params : (string * Ast.ty) list;
  fi_ret : Ast.ty;
  fi_attrs : Ast.attr list;
  fi_defined : bool;
}

(** Symbol environment produced by checking; consumed by lowering. *)
type env = {
  enums : (string * int) list Smap.t;
  enum_consts : int Smap.t;
  globals : global_info Smap.t;
  funcs : func_info Smap.t;
}

val empty_env : env

(** Collect top-level declarations into an environment (pass 1). *)
val collect : Ast.tunit -> env

(** Check a translation unit.  Returns the rewritten unit (enum constants
    folded, [&name] resolved), the environment, and the warnings.  Raises
    {!Error} on hard errors. *)
val check : Ast.tunit -> Ast.tunit * env * diagnostic list

(** Parse and check in one step. *)
val check_string : string -> Ast.tunit * env * diagnostic list
