(** Recursive-descent parser for Mini-C, including the multiverse attribute
    grammar (paper Sections 2-3):

    {v
    multiverse int config_smp;              -- switch, default domain {0,1}
    multiverse values(0, 1, 2) int mode;    -- explicit domain
    multiverse enum mode cur;               -- domain = enum items
    multiverse void spin_irq_lock() { .. }  -- variation point
    multiverse bind(A) void f() { .. }      -- partial specialization
    multiverse fnptr pv_cli = &native_cli;  -- function-pointer switch
    v} *)

exception Error of string * Ast.loc

(** Parse a full translation unit from source text. *)
val parse_string : string -> Ast.tunit
