(* Semantic analysis for Mini-C.

   Mini-C is deliberately weakly typed (everything is an integer word, as in
   the low-level C the paper targets), so the checker's main jobs are name
   resolution, arity checking, and enforcing the multiverse attribute rules
   from Sections 2-3 of the paper:

   - [multiverse] on globals is restricted to integer, bool, enum and
     function-pointer types;
   - [values(..)] and [bind(..)] require [multiverse];
   - [bind(..)] names must refer to multiverse switches;
   - writes to a configuration switch inside a multiversed function are
     legal but produce a warning (the paper's plugin "emits a warning if a
     switch is written").

   The checker also resolves [&name] between functions and globals and
   returns a rewritten AST together with a symbol environment used by the
   lowering pass. *)

exception Error of string * Ast.loc

type severity = Warning | Error_

type diagnostic = { message : string; loc : Ast.loc; severity : severity }

module Smap = Map.Make (String)

type global_info = {
  gi_ty : Ast.ty;
  gi_attrs : Ast.attr list;
  gi_array : int option;
  gi_init : int option;
  gi_fn_init : string option;
  gi_extern : bool;
}

type func_info = {
  fi_params : (string * Ast.ty) list;
  fi_ret : Ast.ty;
  fi_attrs : Ast.attr list;
  fi_defined : bool;
}

type env = {
  enums : (string * int) list Smap.t;  (** enum name -> items *)
  enum_consts : int Smap.t;  (** enum item -> value *)
  globals : global_info Smap.t;
  funcs : func_info Smap.t;
}

let empty_env =
  { enums = Smap.empty; enum_consts = Smap.empty; globals = Smap.empty; funcs = Smap.empty }

let err loc fmt = Format.kasprintf (fun m -> raise (Error (m, loc))) fmt

let is_switch_ty = function
  | Ast.Tint _ | Ast.Tbool | Ast.Tenum _ | Ast.Tfnptr -> true
  | Ast.Tvoid | Ast.Tptr -> false

(* ------------------------------------------------------------------ *)
(* Pass 1: collect top-level declarations                              *)
(* ------------------------------------------------------------------ *)

let check_global_attrs (g : Ast.global) =
  let mv = Ast.is_multiversed g.g_attrs in
  List.iter
    (fun (a : Ast.attr) ->
      match a with
      | Ast.Amultiverse ->
          if not (is_switch_ty g.g_ty) then
            err g.g_loc "multiverse attribute on %s requires an integer-like or fnptr type"
              g.g_name;
          if g.g_array <> None then
            err g.g_loc "multiverse attribute cannot apply to array %s" g.g_name
      | Ast.Avalues vs ->
          if not mv then err g.g_loc "values(..) on %s requires multiverse" g.g_name;
          if vs = [] then err g.g_loc "values(..) on %s must be non-empty" g.g_name
      | Ast.Abind _ -> err g.g_loc "bind(..) is only valid on functions (%s)" g.g_name
      | Ast.Anoinline | Ast.Asaveall ->
          err g.g_loc "code-generation attribute on variable %s" g.g_name)
    g.g_attrs

let check_func_attrs (f : Ast.func) =
  let mv = Ast.is_multiversed f.f_attrs in
  List.iter
    (fun (a : Ast.attr) ->
      match a with
      | Ast.Avalues _ -> err f.f_loc "values(..) is only valid on variables (%s)" f.f_name
      | Ast.Abind _ ->
          if not mv then err f.f_loc "bind(..) on %s requires multiverse" f.f_name
      | Ast.Amultiverse | Ast.Anoinline | Ast.Asaveall -> ())
    f.f_attrs

let collect (tu : Ast.tunit) : env =
  let add_enum env name items loc =
    if Smap.mem name env.enums then err loc "duplicate enum %s" name;
    let enum_consts =
      List.fold_left
        (fun acc (item, v) ->
          if Smap.mem item acc then err loc "duplicate enum item %s" item;
          Smap.add item v acc)
        env.enum_consts items
    in
    { env with enums = Smap.add name items env.enums; enum_consts }
  in
  let add_global env (g : Ast.global) =
    check_global_attrs g;
    (match Smap.find_opt g.g_name env.globals with
    | Some prev when (not prev.gi_extern) && not g.g_extern ->
        err g.g_loc "duplicate global %s" g.g_name
    | Some prev ->
        if not (Ast.ty_equal prev.gi_ty g.g_ty) then
          err g.g_loc "conflicting types for global %s" g.g_name
    | None -> ());
    let info =
      { gi_ty = g.g_ty; gi_attrs = g.g_attrs; gi_array = g.g_array; gi_init = g.g_init;
        gi_fn_init = g.g_fn_init; gi_extern = g.g_extern }
    in
    (* a definition overrides an earlier extern declaration *)
    let keep_prev =
      match Smap.find_opt g.g_name env.globals with
      | Some prev -> g.g_extern && not prev.gi_extern
      | None -> false
    in
    if keep_prev then env else { env with globals = Smap.add g.g_name info env.globals }
  in
  let add_func env (f : Ast.func) =
    check_func_attrs f;
    (match Smap.find_opt f.f_name env.funcs with
    | Some prev when prev.fi_defined && f.f_body <> None ->
        err f.f_loc "duplicate function %s" f.f_name
    | Some prev ->
        if List.length prev.fi_params <> List.length f.f_params then
          err f.f_loc "conflicting arity for function %s" f.f_name
    | None -> ());
    let info =
      { fi_params = f.f_params; fi_ret = f.f_ret; fi_attrs = f.f_attrs;
        fi_defined = f.f_body <> None }
    in
    let keep_prev =
      match Smap.find_opt f.f_name env.funcs with
      | Some prev -> prev.fi_defined && f.f_body = None
      | None -> false
    in
    if keep_prev then env else { env with funcs = Smap.add f.f_name info env.funcs }
  in
  List.fold_left
    (fun env decl ->
      match decl with
      | Ast.Denum (name, items, loc) -> add_enum env name items loc
      | Ast.Dglobal g -> add_global env g
      | Ast.Dfunc f -> add_func env f)
    empty_env tu

(* ------------------------------------------------------------------ *)
(* Pass 2: check and rewrite bodies                                    *)
(* ------------------------------------------------------------------ *)

type ctx = {
  env : env;
  fn : Ast.func;
  mutable locals : Ast.ty Smap.t list;  (** scope stack *)
  mutable loop_depth : int;
  mutable switch_depth : int;
  diags : diagnostic list ref;
}

let warn ctx loc fmt =
  Format.kasprintf
    (fun message -> ctx.diags := { message; loc; severity = Warning } :: !(ctx.diags))
    fmt

let push_scope ctx = ctx.locals <- Smap.empty :: ctx.locals

let pop_scope ctx =
  match ctx.locals with
  | _ :: rest -> ctx.locals <- rest
  | [] -> invalid_arg "pop_scope on empty stack"

let find_local ctx name =
  List.find_map (fun scope -> Smap.find_opt name scope) ctx.locals

let add_local ctx loc name ty =
  match ctx.locals with
  | scope :: rest ->
      if Smap.mem name scope then err loc "duplicate local %s" name;
      ctx.locals <- Smap.add name ty scope :: rest
  | [] -> invalid_arg "add_local with no scope"

let is_global_switch env name =
  match Smap.find_opt name env.globals with
  | Some gi -> Ast.is_multiversed gi.gi_attrs
  | None -> false

let rec check_expr ctx (e : Ast.expr) : Ast.expr =
  let loc = e.eloc in
  let mk edesc : Ast.expr = { e with edesc } in
  match e.edesc with
  | Ast.Eint _ -> e
  | Ast.Evar name ->
      if find_local ctx name <> None then e
      else if Smap.mem name ctx.env.enum_consts then
        (* enum constants become plain integer literals here *)
        mk (Ast.Eint (Smap.find name ctx.env.enum_consts))
      else if Smap.mem name ctx.env.globals then e
      else err loc "undefined variable %s" name
  | Ast.Eunop (op, a) -> mk (Ast.Eunop (op, check_expr ctx a))
  | Ast.Ebinop (op, a, b) -> mk (Ast.Ebinop (op, check_expr ctx a, check_expr ctx b))
  | Ast.Econd (c, a, b) ->
      mk (Ast.Econd (check_expr ctx c, check_expr ctx a, check_expr ctx b))
  | Ast.Ecall (name, args) ->
      let args = List.map (check_expr ctx) args in
      (match Smap.find_opt name ctx.env.funcs with
      | Some fi ->
          if List.length args <> List.length fi.fi_params then
            err loc "function %s expects %d argument(s), got %d" name
              (List.length fi.fi_params) (List.length args);
          mk (Ast.Ecall (name, args))
      | None -> (
          (* a call through a function-pointer global keeps the same syntax *)
          match Smap.find_opt name ctx.env.globals with
          | Some gi when gi.gi_ty = Ast.Tfnptr -> mk (Ast.Ecall (name, args))
          | Some _ -> err loc "%s is not a function or function pointer" name
          | None -> err loc "undefined function %s" name))
  | Ast.Eintrinsic (i, args) ->
      let args = List.map (check_expr ctx) args in
      if List.length args <> Ast.intrinsic_arity i then
        err loc "intrinsic %s expects %d argument(s), got %d" (Ast.intrinsic_name i)
          (Ast.intrinsic_arity i) (List.length args);
      mk (Ast.Eintrinsic (i, args))
  | Ast.Eindex (a, i) -> mk (Ast.Eindex (check_expr ctx a, check_expr ctx i))
  | Ast.Ederef p -> mk (Ast.Ederef (check_expr ctx p))
  | Ast.Ederefw (w, p) -> mk (Ast.Ederefw (w, check_expr ctx p))
  | Ast.Eaddr_of_fun name ->
      if Smap.mem name ctx.env.funcs then e
      else if Smap.mem name ctx.env.globals then mk (Ast.Eaddr_of_var name)
      else err loc "cannot take address of undefined symbol %s" name
  | Ast.Eaddr_of_var name ->
      if Smap.mem name ctx.env.globals then e
      else err loc "cannot take address of undefined global %s" name

let check_lhs ctx loc (l : Ast.lhs) : Ast.lhs =
  match l with
  | Ast.Lvar name ->
      if find_local ctx name <> None then l
      else if Smap.mem name ctx.env.enum_consts then
        err loc "cannot assign to enum constant %s" name
      else if Smap.mem name ctx.env.globals then begin
        if Ast.is_multiversed ctx.fn.f_attrs && is_global_switch ctx.env name then
          warn ctx loc
            "write to configuration switch %s inside multiversed function %s" name
            ctx.fn.f_name;
        l
      end
      else err loc "undefined variable %s" name
  | Ast.Lindex (a, i) -> Ast.Lindex (check_expr ctx a, check_expr ctx i)
  | Ast.Lderef p -> Ast.Lderef (check_expr ctx p)
  | Ast.Lderefw (w, p) -> Ast.Lderefw (w, check_expr ctx p)

let rec check_stmt ctx (s : Ast.stmt) : Ast.stmt =
  let loc = s.sloc in
  let mk sdesc : Ast.stmt = { s with sdesc } in
  match s.sdesc with
  | Ast.Sdecl (name, ty, init) ->
      if ty = Ast.Tvoid then err loc "local %s cannot have type void" name;
      let init = Option.map (check_expr ctx) init in
      add_local ctx loc name ty;
      mk (Ast.Sdecl (name, ty, init))
  | Ast.Sassign (l, e) ->
      let e = check_expr ctx e in
      let l = check_lhs ctx loc l in
      mk (Ast.Sassign (l, e))
  | Ast.Sif (c, t, f) ->
      let c = check_expr ctx c in
      let t = check_block ctx t in
      let f = check_block ctx f in
      mk (Ast.Sif (c, t, f))
  | Ast.Swhile (c, body) ->
      let c = check_expr ctx c in
      ctx.loop_depth <- ctx.loop_depth + 1;
      let body = check_block ctx body in
      ctx.loop_depth <- ctx.loop_depth - 1;
      mk (Ast.Swhile (c, body))
  | Ast.Sdo_while (body, c) ->
      ctx.loop_depth <- ctx.loop_depth + 1;
      let body = check_block ctx body in
      ctx.loop_depth <- ctx.loop_depth - 1;
      let c = check_expr ctx c in
      mk (Ast.Sdo_while (body, c))
  | Ast.Sfor (init, cond, step, body) ->
      push_scope ctx;
      let init = Option.map (check_stmt ctx) init in
      let cond = Option.map (check_expr ctx) cond in
      let step = Option.map (check_stmt ctx) step in
      ctx.loop_depth <- ctx.loop_depth + 1;
      let body = check_block ctx body in
      ctx.loop_depth <- ctx.loop_depth - 1;
      pop_scope ctx;
      mk (Ast.Sfor (init, cond, step, body))
  | Ast.Sreturn e ->
      let e = Option.map (check_expr ctx) e in
      (match e, ctx.fn.f_ret with
      | Some _, Ast.Tvoid -> err loc "void function %s returns a value" ctx.fn.f_name
      | None, ret when ret <> Ast.Tvoid ->
          err loc "non-void function %s returns without a value" ctx.fn.f_name
      | _ -> ());
      mk (Ast.Sreturn e)
  | Ast.Sexpr e -> mk (Ast.Sexpr (check_expr ctx e))
  | Ast.Sbreak ->
      if ctx.loop_depth = 0 && ctx.switch_depth = 0 then
        err loc "break outside of loop or switch";
      s
  | Ast.Scontinue ->
      if ctx.loop_depth = 0 then err loc "continue outside of loop";
      s
  | Ast.Sblock body -> mk (Ast.Sblock (check_block ctx body))
  | Ast.Sswitch (scrutinee, cases, default) ->
      let scrutinee = check_expr ctx scrutinee in
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (labels, _) ->
          List.iter
            (fun v ->
              if Hashtbl.mem seen v then err loc "duplicate case label %d" v;
              Hashtbl.replace seen v ())
            labels)
        cases;
      ctx.switch_depth <- ctx.switch_depth + 1;
      let cases = List.map (fun (labels, body) -> (labels, check_block ctx body)) cases in
      let default = Option.map (check_block ctx) default in
      ctx.switch_depth <- ctx.switch_depth - 1;
      mk (Ast.Sswitch (scrutinee, cases, default))

and check_block ctx body =
  push_scope ctx;
  let body = List.map (check_stmt ctx) body in
  pop_scope ctx;
  body

let check_bind_attr env (f : Ast.func) =
  match Ast.attr_bind f.f_attrs with
  | None -> ()
  | Some names ->
      List.iter
        (fun name ->
          match Smap.find_opt name env.globals with
          | Some gi when Ast.is_multiversed gi.gi_attrs -> ()
          | Some _ -> err f.f_loc "bind(%s) on %s: not a multiverse switch" name f.f_name
          | None -> err f.f_loc "bind(%s) on %s: undefined global" name f.f_name)
        names

let check_fn_init env (g : Ast.global) =
  match g.g_fn_init with
  | None -> ()
  | Some f ->
      if g.g_ty <> Ast.Tfnptr then
        err g.g_loc "initializer &%s requires fnptr type for %s" f g.g_name;
      if not (Smap.mem f env.funcs) then
        err g.g_loc "fnptr %s initialized with undefined function %s" g.g_name f

(** Check a translation unit.  Returns the (rewritten) unit, the symbol
    environment, and the list of warnings.  Raises [Error] on hard errors. *)
let check (tu : Ast.tunit) : Ast.tunit * env * diagnostic list =
  let env = collect tu in
  let diags = ref [] in
  let tu =
    List.map
      (fun decl ->
        match decl with
        | Ast.Denum _ -> decl
        | Ast.Dglobal g ->
            check_fn_init env g;
            (match g.g_ty with
            | Ast.Tenum e when not (Smap.mem e env.enums) ->
                err g.g_loc "global %s has undefined enum type %s" g.g_name e
            | _ -> ());
            decl
        | Ast.Dfunc f -> (
            check_bind_attr env f;
            match f.f_body with
            | None -> decl
            | Some body ->
                let ctx =
                  { env; fn = f; locals = []; loop_depth = 0; switch_depth = 0; diags }
                in
                push_scope ctx;
                List.iter (fun (name, ty) -> add_local ctx f.f_loc name ty) f.f_params;
                let body = check_block ctx body in
                pop_scope ctx;
                Ast.Dfunc { f with f_body = Some body }))
      tu
  in
  (tu, env, List.rev !diags)

(** Convenience: parse and check in one step. *)
let check_string src =
  let tu = Parser.parse_string src in
  check tu
