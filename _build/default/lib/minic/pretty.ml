(* Pretty-printer for Mini-C ASTs; output re-parses to an equivalent tree,
   which the test suite checks (round-trip property). *)

open Format

let pp_attr fmt = function
  | Ast.Amultiverse -> pp_print_string fmt "multiverse"
  | Ast.Avalues vs ->
      fprintf fmt "values(%a)"
        (pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_print_int)
        vs
  | Ast.Abind names ->
      fprintf fmt "bind(%a)"
        (pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_print_string)
        names
  | Ast.Anoinline -> pp_print_string fmt "noinline"
  | Ast.Asaveall -> pp_print_string fmt "saveall"

let pp_attrs fmt attrs =
  List.iter (fun a -> fprintf fmt "%a " pp_attr a) attrs

let rec pp_expr fmt (e : Ast.expr) =
  match e.edesc with
  | Ast.Eint n -> pp_print_int fmt n
  | Ast.Evar v -> pp_print_string fmt v
  | Ast.Eunop (op, a) -> fprintf fmt "%a(%a)" Ast.pp_unop op pp_expr a
  | Ast.Ebinop (op, a, b) -> fprintf fmt "(%a %a %a)" pp_expr a Ast.pp_binop op pp_expr b
  | Ast.Econd (c, a, b) -> fprintf fmt "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b
  | Ast.Ecall (f, args) -> fprintf fmt "%s(%a)" f pp_args args
  | Ast.Eintrinsic (i, args) -> fprintf fmt "%s(%a)" (Ast.intrinsic_name i) pp_args args
  | Ast.Eindex (a, i) -> fprintf fmt "%a[%a]" pp_expr a pp_expr i
  | Ast.Ederef p -> fprintf fmt "*(%a)" pp_expr p
  | Ast.Ederefw (w, p) -> fprintf fmt "*(int%d*)(%a)" (w * 8) pp_expr p
  | Ast.Eaddr_of_fun f -> fprintf fmt "&%s" f
  | Ast.Eaddr_of_var v -> fprintf fmt "&%s" v

and pp_args fmt args =
  pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_expr fmt args

let pp_lhs fmt = function
  | Ast.Lvar v -> pp_print_string fmt v
  | Ast.Lindex (a, i) -> fprintf fmt "%a[%a]" pp_expr a pp_expr i
  | Ast.Lderef p -> fprintf fmt "*(%a)" pp_expr p
  | Ast.Lderefw (w, p) -> fprintf fmt "*(int%d*)(%a)" (w * 8) pp_expr p

let rec pp_stmt fmt (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Sdecl (name, ty, None) -> fprintf fmt "@[%a %s;@]" Ast.pp_ty ty name
  | Ast.Sdecl (name, ty, Some e) ->
      fprintf fmt "@[%a %s = %a;@]" Ast.pp_ty ty name pp_expr e
  | Ast.Sassign (l, e) -> fprintf fmt "@[%a = %a;@]" pp_lhs l pp_expr e
  | Ast.Sif (c, t, []) -> fprintf fmt "@[<v 2>if (%a) {%a@]@,}" pp_expr c pp_block t
  | Ast.Sif (c, t, f) ->
      fprintf fmt "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" pp_expr c pp_block t
        pp_block f
  | Ast.Swhile (c, body) ->
      fprintf fmt "@[<v 2>while (%a) {%a@]@,}" pp_expr c pp_block body
  | Ast.Sdo_while (body, c) ->
      fprintf fmt "@[<v 2>do {%a@]@,} while (%a);" pp_block body pp_expr c
  | Ast.Sfor (init, cond, step, body) ->
      let pp_opt_stmt fmt = function
        | None -> ()
        | Some s -> pp_header_stmt fmt s
      in
      let pp_opt_expr fmt = function None -> () | Some e -> pp_expr fmt e in
      fprintf fmt "@[<v 2>for (%a; %a; %a) {%a@]@,}" pp_opt_stmt init pp_opt_expr cond
        pp_opt_stmt step pp_block body
  | Ast.Sreturn None -> pp_print_string fmt "return;"
  | Ast.Sreturn (Some e) -> fprintf fmt "@[return %a;@]" pp_expr e
  | Ast.Sexpr e -> fprintf fmt "@[%a;@]" pp_expr e
  | Ast.Sbreak -> pp_print_string fmt "break;"
  | Ast.Scontinue -> pp_print_string fmt "continue;"
  | Ast.Sblock body -> fprintf fmt "@[<v 2>{%a@]@,}" pp_block body
  | Ast.Sswitch (scrutinee, cases, default) ->
      fprintf fmt "@[<v 2>switch (%a) {" pp_expr scrutinee;
      List.iter
        (fun (labels, body) ->
          List.iter (fun v -> fprintf fmt "@,case %d:" v) labels;
          fprintf fmt "@[<v 2>%a@]" pp_block body)
        cases;
      (match default with
      | Some body -> fprintf fmt "@,default:@[<v 2>%a@]" pp_block body
      | None -> ());
      fprintf fmt "@]@,}" 

(* for-loop header clauses print without the trailing semicolon *)
and pp_header_stmt fmt (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Sdecl (name, ty, Some e) -> fprintf fmt "%a %s = %a" Ast.pp_ty ty name pp_expr e
  | Ast.Sdecl (name, ty, None) -> fprintf fmt "%a %s" Ast.pp_ty ty name
  | Ast.Sassign (l, e) -> fprintf fmt "%a = %a" pp_lhs l pp_expr e
  | Ast.Sexpr e -> pp_expr fmt e
  | _ -> pp_stmt fmt s

and pp_block fmt body = List.iter (fun s -> fprintf fmt "@,%a" pp_stmt s) body

let pp_decl fmt = function
  | Ast.Denum (name, items, _) ->
      let pp_item fmt (item, v) = fprintf fmt "%s = %d" item v in
      fprintf fmt "@[enum %s { %a };@]" name
        (pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_item)
        items
  | Ast.Dglobal g ->
      let ext = if g.g_extern then "extern " else "" in
      (match g.g_array, g.g_init, g.g_fn_init with
      | Some n, _, _ ->
          fprintf fmt "@[%s%a%a %s[%d];@]" ext pp_attrs g.g_attrs Ast.pp_ty g.g_ty g.g_name n
      | None, Some v, _ ->
          fprintf fmt "@[%s%a%a %s = %d;@]" ext pp_attrs g.g_attrs Ast.pp_ty g.g_ty
            g.g_name v
      | None, None, Some f ->
          fprintf fmt "@[%s%a%a %s = &%s;@]" ext pp_attrs g.g_attrs Ast.pp_ty g.g_ty
            g.g_name f
      | None, None, None ->
          fprintf fmt "@[%s%a%a %s;@]" ext pp_attrs g.g_attrs Ast.pp_ty g.g_ty g.g_name)
  | Ast.Dfunc f ->
      let pp_param fmt (name, ty) = fprintf fmt "%a %s" Ast.pp_ty ty name in
      let pp_params fmt params =
        pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_param fmt params
      in
      (match f.f_body with
      | None ->
          fprintf fmt "@[extern %a%a %s(%a);@]" pp_attrs f.f_attrs Ast.pp_ty f.f_ret
            f.f_name pp_params f.f_params
      | Some body ->
          fprintf fmt "@[<v 2>%a%a %s(%a) {%a@]@,}" pp_attrs f.f_attrs Ast.pp_ty f.f_ret
            f.f_name pp_params f.f_params pp_block body)

let pp_tunit fmt tu =
  fprintf fmt "@[<v>";
  List.iteri
    (fun i d ->
      if i > 0 then fprintf fmt "@,@,";
      pp_decl fmt d)
    tu;
  fprintf fmt "@]"

let to_string tu = Format.asprintf "%a" pp_tunit tu
