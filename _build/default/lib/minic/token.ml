(* Tokens produced by the Mini-C lexer. *)

type t =
  | INT of int
  | IDENT of string
  | STRING of string
  (* keywords *)
  | KW_INT | KW_BOOL | KW_VOID | KW_ENUM | KW_IF | KW_ELSE | KW_WHILE
  | KW_DO | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE | KW_EXTERN
  | KW_TRUE | KW_FALSE | KW_MULTIVERSE | KW_VALUES | KW_BIND | KW_NOINLINE
  | KW_SWITCH | KW_CASE | KW_DEFAULT
  | KW_SAVEALL | KW_FNPTR | KW_PTR | KW_UINT8 | KW_UINT16 | KW_UINT32
  | KW_UINT64 | KW_INT8 | KW_INT16 | KW_INT32 | KW_INT64
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | ASSIGN | QUESTION | COLON
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR
  | EQ | NE | LT | LE | GT | GE
  | ANDAND | OROR | BANG | TILDE
  | PLUSEQ | MINUSEQ | PLUSPLUS | MINUSMINUS
  | EOF

let keyword_of_string = function
  | "int" -> Some KW_INT
  | "bool" -> Some KW_BOOL
  | "void" -> Some KW_VOID
  | "enum" -> Some KW_ENUM
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "extern" -> Some KW_EXTERN
  | "switch" -> Some KW_SWITCH
  | "case" -> Some KW_CASE
  | "default" -> Some KW_DEFAULT
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "multiverse" -> Some KW_MULTIVERSE
  | "values" -> Some KW_VALUES
  | "bind" -> Some KW_BIND
  | "noinline" -> Some KW_NOINLINE
  | "saveall" -> Some KW_SAVEALL
  | "fnptr" -> Some KW_FNPTR
  | "ptr" -> Some KW_PTR
  | "uint8" -> Some KW_UINT8
  | "uint16" -> Some KW_UINT16
  | "uint32" -> Some KW_UINT32
  | "uint64" -> Some KW_UINT64
  | "int8" -> Some KW_INT8
  | "int16" -> Some KW_INT16
  | "int32" -> Some KW_INT32
  | "int64" -> Some KW_INT64
  | _ -> None

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | KW_INT -> "int" | KW_BOOL -> "bool" | KW_VOID -> "void" | KW_ENUM -> "enum"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_DO -> "do"
  | KW_FOR -> "for" | KW_RETURN -> "return" | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue" | KW_EXTERN -> "extern" | KW_TRUE -> "true"
  | KW_FALSE -> "false" | KW_MULTIVERSE -> "multiverse" | KW_VALUES -> "values"
  | KW_BIND -> "bind" | KW_NOINLINE -> "noinline" | KW_SAVEALL -> "saveall"
  | KW_FNPTR -> "fnptr" | KW_PTR -> "ptr"
  | KW_SWITCH -> "switch" | KW_CASE -> "case" | KW_DEFAULT -> "default"
  | KW_UINT8 -> "uint8" | KW_UINT16 -> "uint16" | KW_UINT32 -> "uint32"
  | KW_UINT64 -> "uint64" | KW_INT8 -> "int8" | KW_INT16 -> "int16"
  | KW_INT32 -> "int32" | KW_INT64 -> "int64"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | SEMI -> ";" | COMMA -> ","
  | ASSIGN -> "=" | QUESTION -> "?" | COLON -> ":"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | SHL -> "<<" | SHR -> ">>"
  | EQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | ANDAND -> "&&" | OROR -> "||" | BANG -> "!" | TILDE -> "~"
  | PLUSEQ -> "+=" | MINUSEQ -> "-=" | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | EOF -> "<eof>"
