(** Pretty-printer for Mini-C ASTs.  Output re-parses to an equivalent
    tree; the test suite checks the round trip. *)

val pp_attr : Format.formatter -> Ast.attr -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_lhs : Format.formatter -> Ast.lhs -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_decl : Format.formatter -> Ast.decl -> unit
val pp_tunit : Format.formatter -> Ast.tunit -> unit
val to_string : Ast.tunit -> string
