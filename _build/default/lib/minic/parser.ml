(* Recursive-descent parser for Mini-C.

   Attribute grammar (mirrors the paper's extension, Section 2/3):
     multiverse int config_smp;              -- switch, default domain {0,1}
     multiverse values(0,1,2) int mode;      -- explicit domain
     multiverse values(0..3) int level;      -- range domain
     multiverse enum mode cur;               -- domain = declared enum items
     multiverse void spin_irq_lock() { .. }  -- variation point
     multiverse bind(A) void f() { .. }      -- partial specialization
     multiverse fnptr pv_cli = &native_cli;  -- function-pointer switch *)

exception Error of string * Ast.loc

type state = { toks : (Token.t * Ast.loc) array; mutable pos : int }

let make toks = { toks = Array.of_list toks; pos = 0 }

let cur st = fst st.toks.(st.pos)
let cur_loc st = snd st.toks.(st.pos)
let error st msg = raise (Error (msg, cur_loc st))

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let eat st tok =
  if cur st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %S but found %S" (Token.to_string tok)
         (Token.to_string (cur st)))

let eat_ident st =
  match cur st with
  | Token.IDENT s ->
      advance st;
      s
  | t -> error st (Printf.sprintf "expected identifier, found %S" (Token.to_string t))

let eat_int st =
  match cur st with
  | Token.INT n ->
      advance st;
      n
  | Token.MINUS ->
      advance st;
      (match cur st with
      | Token.INT n ->
          advance st;
          -n
      | t -> error st (Printf.sprintf "expected integer, found %S" (Token.to_string t)))
  | t -> error st (Printf.sprintf "expected integer, found %S" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let width_ty = function
  | Token.KW_INT8 -> Some (Ast.Tint { width = 1; signed = true })
  | Token.KW_INT16 -> Some (Ast.Tint { width = 2; signed = true })
  | Token.KW_INT32 -> Some (Ast.Tint { width = 4; signed = true })
  | Token.KW_INT64 -> Some (Ast.Tint { width = 8; signed = true })
  | Token.KW_UINT8 -> Some (Ast.Tint { width = 1; signed = false })
  | Token.KW_UINT16 -> Some (Ast.Tint { width = 2; signed = false })
  | Token.KW_UINT32 -> Some (Ast.Tint { width = 4; signed = false })
  | Token.KW_UINT64 -> Some (Ast.Tint { width = 8; signed = false })
  | _ -> None

let is_type_start st =
  match cur st with
  | Token.KW_INT | Token.KW_BOOL | Token.KW_VOID | Token.KW_ENUM | Token.KW_PTR
  | Token.KW_FNPTR -> true
  | t -> width_ty t <> None

let parse_type st =
  match cur st with
  | Token.KW_INT ->
      advance st;
      Ast.int_ty
  | Token.KW_BOOL ->
      advance st;
      Ast.Tbool
  | Token.KW_VOID ->
      advance st;
      Ast.Tvoid
  | Token.KW_PTR ->
      advance st;
      Ast.Tptr
  | Token.KW_FNPTR ->
      advance st;
      Ast.Tfnptr
  | Token.KW_ENUM ->
      advance st;
      let name = eat_ident st in
      Ast.Tenum name
  | t -> (
      match width_ty t with
      | Some ty ->
          advance st;
          ty
      | None -> error st (Printf.sprintf "expected type, found %S" (Token.to_string t)))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let mk l edesc : Ast.expr = { edesc; eloc = l }

let rec parse_expr st = parse_cond st

and parse_cond st =
  let l = cur_loc st in
  let c = parse_lor st in
  if cur st = Token.QUESTION then begin
    advance st;
    let a = parse_expr st in
    eat st Token.COLON;
    let b = parse_cond st in
    mk l (Ast.Econd (c, a, b))
  end
  else c

and parse_lor st =
  let l = cur_loc st in
  let lhs = parse_land st in
  if cur st = Token.OROR then begin
    advance st;
    let rhs = parse_lor st in
    mk l (Ast.Ebinop (Ast.Lor, lhs, rhs))
  end
  else lhs

and parse_land st =
  let l = cur_loc st in
  let lhs = parse_bor st in
  if cur st = Token.ANDAND then begin
    advance st;
    let rhs = parse_land st in
    mk l (Ast.Ebinop (Ast.Land, lhs, rhs))
  end
  else lhs

and parse_bor st = parse_binop_level st [ (Token.PIPE, Ast.Bor) ] parse_bxor
and parse_bxor st = parse_binop_level st [ (Token.CARET, Ast.Bxor) ] parse_band
and parse_band st = parse_binop_level st [ (Token.AMP, Ast.Band) ] parse_equality

and parse_equality st =
  parse_binop_level st [ (Token.EQ, Ast.Eq); (Token.NE, Ast.Ne) ] parse_relational

and parse_relational st =
  parse_binop_level st
    [ (Token.LT, Ast.Lt); (Token.LE, Ast.Le); (Token.GT, Ast.Gt); (Token.GE, Ast.Ge) ]
    parse_shift

and parse_shift st =
  parse_binop_level st [ (Token.SHL, Ast.Shl); (Token.SHR, Ast.Shr) ] parse_additive

and parse_additive st =
  parse_binop_level st [ (Token.PLUS, Ast.Add); (Token.MINUS, Ast.Sub) ] parse_multiplicative

and parse_multiplicative st =
  parse_binop_level st
    [ (Token.STAR, Ast.Mul); (Token.SLASH, Ast.Div); (Token.PERCENT, Ast.Mod) ]
    parse_unary

and parse_binop_level st table next =
  let rec go lhs =
    let l = cur_loc st in
    match List.assoc_opt (cur st) table with
    | Some op ->
        advance st;
        let rhs = next st in
        go (mk l (Ast.Ebinop (op, lhs, rhs)))
    | None -> lhs
  in
  go (next st)

and parse_unary st =
  let l = cur_loc st in
  match cur st with
  | Token.MINUS ->
      advance st;
      mk l (Ast.Eunop (Ast.Neg, parse_unary st))
  | Token.BANG ->
      advance st;
      mk l (Ast.Eunop (Ast.Lnot, parse_unary st))
  | Token.TILDE ->
      advance st;
      mk l (Ast.Eunop (Ast.Bnot, parse_unary st))
  | Token.STAR ->
      advance st;
      (* A width-cast deref loads with an explicit width; a plain deref loads a word. *)
      if cur st = Token.LPAREN && width_ty (fst st.toks.(st.pos + 1)) <> None then begin
        advance st;
        let ty =
          match width_ty (cur st) with
          | Some t ->
              advance st;
              t
          | None -> error st "expected width type in cast"
        in
        eat st Token.STAR;
        eat st Token.RPAREN;
        let e = parse_unary st in
        mk l (Ast.Ederefw (Ast.ty_width ty, e))
      end
      else mk l (Ast.Ederef (parse_unary st))
  | Token.AMP ->
      advance st;
      (* [&name]: function or global address; the type checker resolves
         which one and rewrites to [Eaddr_of_var] when needed. *)
      let name = eat_ident st in
      mk l (Ast.Eaddr_of_fun name)
  | _ -> parse_postfix st

and parse_postfix st =
  let l = cur_loc st in
  let e = parse_primary st in
  let rec go e =
    match cur st with
    | Token.LBRACKET ->
        advance st;
        let idx = parse_expr st in
        eat st Token.RBRACKET;
        go (mk l (Ast.Eindex (e, idx)))
    | _ -> e
  in
  go e

and parse_primary st =
  let l = cur_loc st in
  match cur st with
  | Token.INT n ->
      advance st;
      mk l (Ast.Eint n)
  | Token.KW_TRUE ->
      advance st;
      mk l (Ast.Eint 1)
  | Token.KW_FALSE ->
      advance st;
      mk l (Ast.Eint 0)
  | Token.IDENT name ->
      advance st;
      if cur st = Token.LPAREN then begin
        advance st;
        let args = parse_args st in
        eat st Token.RPAREN;
        match Ast.intrinsic_of_name name with
        | Some i -> mk l (Ast.Eintrinsic (i, args))
        | None -> mk l (Ast.Ecall (name, args))
      end
      else mk l (Ast.Evar name)
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      eat st Token.RPAREN;
      e
  | t -> error st (Printf.sprintf "expected expression, found %S" (Token.to_string t))

and parse_args st =
  if cur st = Token.RPAREN then []
  else
    let rec go acc =
      let e = parse_expr st in
      if cur st = Token.COMMA then begin
        advance st;
        go (e :: acc)
      end
      else List.rev (e :: acc)
    in
    go []

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let lhs_of_expr st (e : Ast.expr) : Ast.lhs =
  match e.edesc with
  | Ast.Evar v -> Ast.Lvar v
  | Ast.Eindex (a, i) -> Ast.Lindex (a, i)
  | Ast.Ederef p -> Ast.Lderef p
  | Ast.Ederefw (w, p) -> Ast.Lderefw (w, p)
  | _ -> error st "invalid assignment target"

let mk_stmt l sdesc : Ast.stmt = { sdesc; sloc = l }

(* A "simple" statement is one usable as a for-loop header clause:
   assignment, compound assignment, increment/decrement, or expression. *)
let rec parse_simple st =
  let l = cur_loc st in
  if is_type_start st then begin
    let ty = parse_type st in
    let name = eat_ident st in
    let init =
      if cur st = Token.ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    mk_stmt l (Ast.Sdecl (name, ty, init))
  end
  else
    let e = parse_expr st in
    match cur st with
    | Token.ASSIGN ->
        advance st;
        let rhs = parse_expr st in
        mk_stmt l (Ast.Sassign (lhs_of_expr st e, rhs))
    | Token.PLUSEQ ->
        advance st;
        let rhs = parse_expr st in
        mk_stmt l (Ast.Sassign (lhs_of_expr st e, mk l (Ast.Ebinop (Ast.Add, e, rhs))))
    | Token.MINUSEQ ->
        advance st;
        let rhs = parse_expr st in
        mk_stmt l (Ast.Sassign (lhs_of_expr st e, mk l (Ast.Ebinop (Ast.Sub, e, rhs))))
    | Token.PLUSPLUS ->
        advance st;
        mk_stmt l (Ast.Sassign (lhs_of_expr st e, mk l (Ast.Ebinop (Ast.Add, e, mk l (Ast.Eint 1)))))
    | Token.MINUSMINUS ->
        advance st;
        mk_stmt l (Ast.Sassign (lhs_of_expr st e, mk l (Ast.Ebinop (Ast.Sub, e, mk l (Ast.Eint 1)))))
    | _ -> mk_stmt l (Ast.Sexpr e)

and parse_stmt st : Ast.stmt =
  let l = cur_loc st in
  match cur st with
  | Token.LBRACE ->
      advance st;
      let body = parse_stmts st in
      eat st Token.RBRACE;
      mk_stmt l (Ast.Sblock body)
  | Token.KW_IF ->
      advance st;
      eat st Token.LPAREN;
      let c = parse_expr st in
      eat st Token.RPAREN;
      let then_ = parse_branch st in
      let else_ =
        if cur st = Token.KW_ELSE then begin
          advance st;
          parse_branch st
        end
        else []
      in
      mk_stmt l (Ast.Sif (c, then_, else_))
  | Token.KW_WHILE ->
      advance st;
      eat st Token.LPAREN;
      let c = parse_expr st in
      eat st Token.RPAREN;
      let body = parse_branch st in
      mk_stmt l (Ast.Swhile (c, body))
  | Token.KW_DO ->
      advance st;
      let body = parse_branch st in
      eat st Token.KW_WHILE;
      eat st Token.LPAREN;
      let c = parse_expr st in
      eat st Token.RPAREN;
      eat st Token.SEMI;
      mk_stmt l (Ast.Sdo_while (body, c))
  | Token.KW_FOR ->
      advance st;
      eat st Token.LPAREN;
      let init = if cur st = Token.SEMI then None else Some (parse_simple st) in
      eat st Token.SEMI;
      let cond = if cur st = Token.SEMI then None else Some (parse_expr st) in
      eat st Token.SEMI;
      let step = if cur st = Token.RPAREN then None else Some (parse_simple st) in
      eat st Token.RPAREN;
      let body = parse_branch st in
      mk_stmt l (Ast.Sfor (init, cond, step, body))
  | Token.KW_SWITCH ->
      advance st;
      eat st Token.LPAREN;
      let scrutinee = parse_expr st in
      eat st Token.RPAREN;
      eat st Token.LBRACE;
      let parse_case_body () =
        (* statements until the next case/default label or the closing brace *)
        let rec go acc =
          match cur st with
          | Token.KW_CASE | Token.KW_DEFAULT | Token.RBRACE -> List.rev acc
          | _ -> go (parse_stmt st :: acc)
        in
        go []
      in
      let rec parse_labels acc =
        (* one or more "case N:" in a row share the following body *)
        match cur st with
        | Token.KW_CASE ->
            advance st;
            let v = eat_int st in
            eat st Token.COLON;
            parse_labels (v :: acc)
        | _ -> List.rev acc
      in
      let rec parse_groups cases default =
        match cur st with
        | Token.KW_CASE ->
            let labels = parse_labels [] in
            let body = parse_case_body () in
            parse_groups ((labels, body) :: cases) default
        | Token.KW_DEFAULT ->
            if default <> None then error st "duplicate default in switch";
            advance st;
            eat st Token.COLON;
            let body = parse_case_body () in
            parse_groups cases (Some body)
        | Token.RBRACE -> (List.rev cases, default)
        | t ->
            error st
              (Printf.sprintf "expected case, default or '}' in switch, found %S"
                 (Token.to_string t))
      in
      let cases, default = parse_groups [] None in
      eat st Token.RBRACE;
      mk_stmt l (Ast.Sswitch (scrutinee, cases, default))
  | Token.KW_RETURN ->
      advance st;
      let e = if cur st = Token.SEMI then None else Some (parse_expr st) in
      eat st Token.SEMI;
      mk_stmt l (Ast.Sreturn e)
  | Token.KW_BREAK ->
      advance st;
      eat st Token.SEMI;
      mk_stmt l Ast.Sbreak
  | Token.KW_CONTINUE ->
      advance st;
      eat st Token.SEMI;
      mk_stmt l Ast.Scontinue
  | _ ->
      let s = parse_simple st in
      eat st Token.SEMI;
      s

and parse_branch st =
  (* A branch body: either a braced block or a single statement. *)
  if cur st = Token.LBRACE then begin
    advance st;
    let body = parse_stmts st in
    eat st Token.RBRACE;
    body
  end
  else [ parse_stmt st ]

and parse_stmts st =
  let rec go acc =
    if cur st = Token.RBRACE || cur st = Token.EOF then List.rev acc
    else go (parse_stmt st :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_values st =
  eat st Token.LPAREN;
  let first = eat_int st in
  (* either a range "lo..hi" (lexed as lo . . hi? no: ".." is not a token),
     so ranges are written "values(lo, hi, step?)"?  We instead accept an
     explicit list "values(a, b, c)" and the range form "values(a - b)" is
     not supported; a contiguous range can be given as a list. *)
  let rec go acc =
    if cur st = Token.COMMA then begin
      advance st;
      let v = eat_int st in
      go (v :: acc)
    end
    else List.rev acc
  in
  let vs = go [ first ] in
  eat st Token.RPAREN;
  vs

let parse_bind st =
  eat st Token.LPAREN;
  let first = eat_ident st in
  let rec go acc =
    if cur st = Token.COMMA then begin
      advance st;
      go (eat_ident st :: acc)
    end
    else List.rev acc
  in
  let names = go [ first ] in
  eat st Token.RPAREN;
  names

(** Parse leading attributes and the [extern] storage class, in any order. *)
let parse_attrs st =
  let rec go attrs ext =
    match cur st with
    | Token.KW_EXTERN ->
        advance st;
        go attrs true
    | Token.KW_MULTIVERSE ->
        advance st;
        go (Ast.Amultiverse :: attrs) ext
    | Token.KW_VALUES ->
        advance st;
        go (Ast.Avalues (parse_values st) :: attrs) ext
    | Token.KW_BIND ->
        advance st;
        go (Ast.Abind (parse_bind st) :: attrs) ext
    | Token.KW_NOINLINE ->
        advance st;
        go (Ast.Anoinline :: attrs) ext
    | Token.KW_SAVEALL ->
        advance st;
        go (Ast.Asaveall :: attrs) ext
    | _ -> (List.rev attrs, ext)
  in
  go [] false

let parse_params st =
  if cur st = Token.RPAREN then []
  else if cur st = Token.KW_VOID && fst st.toks.(st.pos + 1) = Token.RPAREN then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let ty = parse_type st in
      let name = eat_ident st in
      if cur st = Token.COMMA then begin
        advance st;
        go ((name, ty) :: acc)
      end
      else List.rev ((name, ty) :: acc)
    in
    go []

let parse_enum st l =
  eat st Token.KW_ENUM;
  let name = eat_ident st in
  eat st Token.LBRACE;
  let rec go acc next =
    match cur st with
    | Token.RBRACE ->
        if acc = [] then error st "enum must declare at least one item";
        List.rev acc
    | Token.IDENT item ->
        advance st;
        let v =
          if cur st = Token.ASSIGN then begin
            advance st;
            eat_int st
          end
          else next
        in
        let acc = (item, v) :: acc in
        if cur st = Token.COMMA then begin
          advance st;
          go acc (v + 1)
        end
        else go acc (v + 1)
    | t -> error st (Printf.sprintf "expected enum item, found %S" (Token.to_string t))
  in
  let items = go [] 0 in
  eat st Token.RBRACE;
  eat st Token.SEMI;
  Ast.Denum (name, items, l)

let parse_decl st : Ast.decl =
  let l = cur_loc st in
  (* enum *definition* only when followed by IDENT '{' *)
  if
    cur st = Token.KW_ENUM
    && (match fst st.toks.(st.pos + 1) with Token.IDENT _ -> true | _ -> false)
    && fst st.toks.(st.pos + 2) = Token.LBRACE
  then parse_enum st l
  else begin
    let attrs, ext = parse_attrs st in
    let ty = parse_type st in
    let name = eat_ident st in
    match cur st with
    | Token.LPAREN ->
        advance st;
        let params = parse_params st in
        eat st Token.RPAREN;
        let body =
          if cur st = Token.SEMI then begin
            advance st;
            None
          end
          else begin
            eat st Token.LBRACE;
            let body = parse_stmts st in
            eat st Token.RBRACE;
            Some body
          end
        in
        Ast.Dfunc
          { f_name = name; f_params = params; f_ret = ty; f_attrs = attrs;
            f_body = body; f_loc = l }
    | Token.LBRACKET ->
        advance st;
        let n = eat_int st in
        eat st Token.RBRACKET;
        eat st Token.SEMI;
        Ast.Dglobal
          { g_name = name; g_ty = ty; g_attrs = attrs; g_init = None;
            g_array = Some n; g_fn_init = None; g_extern = ext; g_loc = l }
    | _ ->
        let g_init, g_fn_init =
          if cur st = Token.ASSIGN then begin
            advance st;
            if cur st = Token.AMP then begin
              advance st;
              let f = eat_ident st in
              (None, Some f)
            end
            else (Some (eat_int st), None)
          end
          else (None, None)
        in
        eat st Token.SEMI;
        Ast.Dglobal
          { g_name = name; g_ty = ty; g_attrs = attrs; g_init; g_array = None;
            g_fn_init; g_extern = ext; g_loc = l }
  end

(** Parse a full translation unit from source text. *)
let parse_string src : Ast.tunit =
  let st = make (Lexer.tokenize src) in
  let rec go acc = if cur st = Token.EOF then List.rev acc else go (parse_decl st :: acc) in
  go []
