(* Abstract syntax of Mini-C, the C-like input language of this multiverse
   reproduction.  The surface syntax mirrors the paper's examples: global
   configuration switches and functions carry a [multiverse] attribute,
   switches may restrict their specialization domain with [values(..)], and
   functions may restrict the bound switches with [bind(..)]. *)

type loc = { line : int; col : int }

let dummy_loc = { line = 0; col = 0 }

let pp_loc fmt { line; col } = Format.fprintf fmt "%d:%d" line col

(** Integer-like storage types.  Widths are in bytes and matter for the
    descriptor records (Section 5 of the paper stores width and signedness
    of every configuration switch). *)
type ty =
  | Tvoid
  | Tint of { width : int; signed : bool }
  | Tbool
  | Tenum of string
  | Tptr  (** word-sized untyped pointer *)
  | Tfnptr  (** pointer to function, usable as a configuration switch *)

let ty_equal a b =
  match a, b with
  | Tvoid, Tvoid | Tbool, Tbool | Tptr, Tptr | Tfnptr, Tfnptr -> true
  | Tint a, Tint b -> a.width = b.width && a.signed = b.signed
  | Tenum a, Tenum b -> String.equal a b
  | (Tvoid | Tint _ | Tbool | Tenum _ | Tptr | Tfnptr), _ -> false

let int_ty = Tint { width = 8; signed = true }

let pp_ty fmt = function
  | Tvoid -> Format.pp_print_string fmt "void"
  | Tint { width = 8; signed = true } -> Format.pp_print_string fmt "int"
  | Tint { width; signed } ->
      Format.fprintf fmt "%sint%d" (if signed then "" else "u") (width * 8)
  | Tbool -> Format.pp_print_string fmt "bool"
  | Tenum e -> Format.fprintf fmt "enum %s" e
  | Tptr -> Format.pp_print_string fmt "ptr"
  | Tfnptr -> Format.pp_print_string fmt "fnptr"

type unop = Neg | Lnot | Bnot

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor  (** short-circuit; lowered to control flow *)

let pp_unop fmt op =
  Format.pp_print_string fmt (match op with Neg -> "-" | Lnot -> "!" | Bnot -> "~")

let pp_binop fmt op =
  Format.pp_print_string fmt
    (match op with
    | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
    | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
    | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
    | Land -> "&&" | Lor -> "||")

(** Intrinsics map one-to-one to special machine instructions with their own
    cycle costs; they are the hooks the kernel-like workloads are built on. *)
type intrinsic =
  | Icli          (** disable interrupts *)
  | Isti          (** enable interrupts *)
  | Ipause        (** spin-loop hint *)
  | Ifence        (** full memory fence *)
  | Iatomic_xchg  (** [__atomic_xchg(p, v)]: atomically swap, return old *)
  | Ihypercall    (** [__hypercall(n)]: trap to the (simulated) hypervisor *)
  | Irdtsc        (** read the cycle counter *)
  | Ihalt         (** stop the machine (used by test drivers) *)

let intrinsic_of_name = function
  | "__cli" -> Some Icli
  | "__sti" -> Some Isti
  | "__pause" -> Some Ipause
  | "__fence" -> Some Ifence
  | "__atomic_xchg" -> Some Iatomic_xchg
  | "__hypercall" -> Some Ihypercall
  | "__rdtsc" -> Some Irdtsc
  | "__halt" -> Some Ihalt
  | _ -> None

let intrinsic_name = function
  | Icli -> "__cli"
  | Isti -> "__sti"
  | Ipause -> "__pause"
  | Ifence -> "__fence"
  | Iatomic_xchg -> "__atomic_xchg"
  | Ihypercall -> "__hypercall"
  | Irdtsc -> "__rdtsc"
  | Ihalt -> "__halt"

(** Number of arguments / whether the intrinsic produces a value. *)
let intrinsic_arity = function
  | Icli | Isti | Ipause | Ifence | Ihalt -> 0
  | Ihypercall -> 1
  | Irdtsc -> 0
  | Iatomic_xchg -> 2

let intrinsic_has_result = function
  | Iatomic_xchg | Irdtsc -> true
  | Icli | Isti | Ipause | Ifence | Ihypercall | Ihalt -> false

type expr = { edesc : edesc; eloc : loc }

and edesc =
  | Eint of int
  | Evar of string  (** local, global, or enum constant *)
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ecall of string * expr list
      (** direct call; resolved against fn-pointer globals during lowering *)
  | Eintrinsic of intrinsic * expr list
  | Eindex of expr * expr  (** [a[i]] where [a] is an array or pointer *)
  | Ederef of expr  (** [*p]: load a word *)
  | Ederefw of int * expr  (** width-cast load, "star (intN star) p" *)
  | Eaddr_of_fun of string  (** [&f] *)
  | Eaddr_of_var of string  (** [&g] for a global *)
  | Econd of expr * expr * expr  (** [c ? a : b] *)

type stmt = { sdesc : sdesc; sloc : loc }

and sdesc =
  | Sdecl of string * ty * expr option  (** local variable *)
  | Sassign of lhs * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo_while of stmt list * expr
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sreturn of expr option
  | Sexpr of expr
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sswitch of expr * (int list * stmt list) list * stmt list option
      (** scrutinee, cases (labels may share a body), optional default;
          C-style but without fall-through: each case body is closed *)

and lhs =
  | Lvar of string
  | Lindex of expr * expr  (** [a[i] = e] *)
  | Lderef of expr  (** [*p = e] *)
  | Lderefw of int * expr  (** width-cast store *)

(** Declaration attributes.  [Amultiverse] marks configuration switches
    (globals) and variation points (functions); [Avalues] overrides the
    specialization domain of a switch; [Abind] restricts which referenced
    switches are bound for a function (partial specialization, Section 7.1);
    [Anoinline] and [Asaveall] control code generation. *)
type attr =
  | Amultiverse
  | Avalues of int list
  | Abind of string list
  | Anoinline
  | Asaveall

type global = {
  g_name : string;
  g_ty : ty;
  g_attrs : attr list;
  g_init : int option;
  g_array : int option;  (** [Some n] for [int g[n]] *)
  g_fn_init : string option;  (** [fnptr g = &f] *)
  g_extern : bool;
  g_loc : loc;
}

type func = {
  f_name : string;
  f_params : (string * ty) list;
  f_ret : ty;
  f_attrs : attr list;
  f_body : stmt list option;  (** [None] for extern declarations *)
  f_loc : loc;
}

type decl =
  | Dglobal of global
  | Dfunc of func
  | Denum of string * (string * int) list * loc

type tunit = decl list

let has_attr attrs p = List.exists p attrs
let is_multiversed attrs = has_attr attrs (function Amultiverse -> true | _ -> false)
let is_noinline attrs = has_attr attrs (function Anoinline -> true | _ -> false)
let is_saveall attrs = has_attr attrs (function Asaveall -> true | _ -> false)

let attr_values attrs =
  List.find_map (function Avalues vs -> Some vs | _ -> None) attrs

let attr_bind attrs =
  List.find_map (function Abind names -> Some names | _ -> None) attrs

(** Width in bytes of values of type [ty] when stored in memory. *)
let ty_width = function
  | Tvoid -> 0
  | Tint { width; _ } -> width
  | Tbool -> 1
  | Tenum _ -> 8  (* word-sized so negative enum values survive zero-extension *)
  | Tptr | Tfnptr -> 8

let ty_signed = function
  | Tint { signed; _ } -> signed
  | Tenum _ -> true
  | Tvoid | Tbool | Tptr | Tfnptr -> false
