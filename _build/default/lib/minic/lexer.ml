(* Hand-written lexer for Mini-C.  Supports line (//) and block comments,
   decimal / hexadecimal / character literals, and tracks source locations
   for diagnostics. *)

exception Error of string * Ast.loc

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let make src = { src; pos = 0; line = 1; bol = 0 }

let loc st : Ast.loc = { line = st.line; col = st.pos - st.bol + 1 }

let error st msg = raise (Error (msg, loc st))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '/' -> (
      match peek2 st with
      | Some '/' ->
          let rec eat () =
            match peek st with
            | Some '\n' | None -> ()
            | Some _ ->
                advance st;
                eat ()
          in
          eat ();
          skip_ws st
      | Some '*' ->
          advance st;
          advance st;
          let rec eat () =
            match peek st, peek2 st with
            | Some '*', Some '/' ->
                advance st;
                advance st
            | None, _ -> error st "unterminated block comment"
            | Some _, _ ->
                advance st;
                eat ()
          in
          eat ();
          skip_ws st
      | Some _ | None -> ())
  | Some _ | None -> ()

let lex_number st =
  let start = st.pos in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st;
    advance st;
    let digits_start = st.pos in
    while match peek st with Some c -> is_hex c | None -> false do
      advance st
    done;
    if st.pos = digits_start then error st "malformed hexadecimal literal";
    int_of_string (String.sub st.src start (st.pos - start))
  end
  else begin
    while match peek st with Some c -> is_digit c | None -> false do
      advance st
    done;
    int_of_string (String.sub st.src start (st.pos - start))
  end

let lex_char st =
  (* consume opening quote already done by caller *)
  let c =
    match peek st with
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> '\n'
        | Some 't' -> '\t'
        | Some 'r' -> '\r'
        | Some '0' -> '\000'
        | Some '\\' -> '\\'
        | Some '\'' -> '\''
        | Some _ | None -> error st "bad escape in character literal")
    | Some c -> c
    | None -> error st "unterminated character literal"
  in
  advance st;
  if peek st <> Some '\'' then error st "unterminated character literal";
  advance st;
  Char.code c

let lex_string st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '"' -> Buffer.add_char buf '"'
        | Some _ | None -> error st "bad escape in string literal");
        advance st;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
    | None -> error st "unterminated string literal"
  in
  go ();
  Buffer.contents buf

(** Lex one token; returns the token and the location where it started. *)
let next st : Token.t * Ast.loc =
  skip_ws st;
  let l = loc st in
  let tok =
    match peek st with
    | None -> Token.EOF
    | Some c when is_digit c -> Token.INT (lex_number st)
    | Some c when is_ident_start c ->
        let start = st.pos in
        while match peek st with Some c -> is_ident c | None -> false do
          advance st
        done;
        let s = String.sub st.src start (st.pos - start) in
        (match Token.keyword_of_string s with
        | Some kw -> kw
        | None -> Token.IDENT s)
    | Some '\'' ->
        advance st;
        Token.INT (lex_char st)
    | Some '"' ->
        advance st;
        Token.STRING (lex_string st)
    | Some c ->
        advance st;
        let two expected tok_two tok_one =
          if peek st = Some expected then begin
            advance st;
            tok_two
          end
          else tok_one
        in
        (match c with
        | '(' -> Token.LPAREN
        | ')' -> Token.RPAREN
        | '{' -> Token.LBRACE
        | '}' -> Token.RBRACE
        | '[' -> Token.LBRACKET
        | ']' -> Token.RBRACKET
        | ';' -> Token.SEMI
        | ',' -> Token.COMMA
        | '?' -> Token.QUESTION
        | ':' -> Token.COLON
        | '+' ->
            if peek st = Some '+' then begin
              advance st;
              Token.PLUSPLUS
            end
            else two '=' Token.PLUSEQ Token.PLUS
        | '-' ->
            if peek st = Some '-' then begin
              advance st;
              Token.MINUSMINUS
            end
            else two '=' Token.MINUSEQ Token.MINUS
        | '*' -> Token.STAR
        | '/' -> Token.SLASH
        | '%' -> Token.PERCENT
        | '^' -> Token.CARET
        | '~' -> Token.TILDE
        | '&' -> two '&' Token.ANDAND Token.AMP
        | '|' -> two '|' Token.OROR Token.PIPE
        | '=' -> two '=' Token.EQ Token.ASSIGN
        | '!' -> two '=' Token.NE Token.BANG
        | '<' ->
            if peek st = Some '<' then begin
              advance st;
              Token.SHL
            end
            else two '=' Token.LE Token.LT
        | '>' ->
            if peek st = Some '>' then begin
              advance st;
              Token.SHR
            end
            else two '=' Token.GE Token.GT
        | c -> error st (Printf.sprintf "unexpected character %C" c))
  in
  (tok, l)

(** Lex a whole source string into a token list (with locations). *)
let tokenize src =
  let st = make src in
  let rec go acc =
    let tok, l = next st in
    match tok with
    | Token.EOF -> List.rev ((tok, l) :: acc)
    | _ -> go ((tok, l) :: acc)
  in
  go []
