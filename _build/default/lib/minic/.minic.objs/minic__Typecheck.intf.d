lib/minic/typecheck.mli: Ast Map
