lib/minic/lexer.mli: Ast Token
