lib/minic/typecheck.ml: Ast Format Hashtbl List Map Option Parser String
