(* Quickstart: the paper's Figure 2/3 worked example, end to end.

     dune exec examples/quickstart.exe

   A Mini-C program with two configuration switches is compiled; the
   multiverse plugin generates specialized variants of [multi()]; the
   runtime commits the variant matching the current switch values by
   patching the call site in [foo()]; flipping the switches has no effect
   until the next commit. *)

module H = Mv_workloads.Harness
module Image = Mv_link.Image

let source =
  {|
  multiverse bool A;
  multiverse int B;

  int effects;

  void calc() { effects = effects + 10; }
  void log_() { effects = effects + 100; }

  multiverse void multi() {
    if (A) {
      calc();
      if (B) {
        log_();
      }
    }
  }

  int foo() {
    effects = 0;
    multi();
    return effects;
  }
|}

let () =
  Format.printf "--- multiverse quickstart: compiling the Figure 2 example ---@.";
  let s = H.session1 source in
  let img = s.H.program.Core.Compiler.p_image in

  (* 1. inspect what the compiler generated *)
  let fns = Core.Descriptor.parse_functions img in
  let f = List.hd fns in
  Format.printf "@.multi() has %d specialized variants:@."
    (List.length f.Core.Descriptor.fd_variants);
  List.iter
    (fun (v : Core.Descriptor.variant_record) ->
      Format.printf "  %-18s (%2d bytes)@."
        (Option.value ~default:"?" (Image.symbol_at img v.va_addr))
        v.va_size)
    f.Core.Descriptor.fd_variants;

  (* 2. dynamic behavior before any commit: switches are read on each call *)
  H.set s "A" 1;
  H.set s "B" 1;
  Format.printf "@.uncommitted, A=1 B=1: foo() = %d (dynamic evaluation)@."
    (H.call s "foo" []);

  (* 3. commit: the matching variant is patched into the call sites *)
  let bound = H.commit s in
  Format.printf "multiverse_commit()  -> %d function bound@." bound;
  Format.printf "installed variant    -> %s@."
    (Option.value ~default:"(generic)" (Core.Runtime.installed_variant s.H.runtime "multi"));
  Format.printf "committed, A=1 B=1:   foo() = %d@." (H.call s "foo" []);

  (* 4. the committed binding persists even when the switches change *)
  H.set s "A" 0;
  Format.printf "after A=0 w/o commit: foo() = %d (still bound to A=1,B=1)@."
    (H.call s "foo" []);

  (* 5. re-commit picks up the new value; the A=0 variant is *empty* and is
        inlined into the call site as nops (Figure 3c) *)
  ignore (H.commit s);
  Format.printf "after re-commit:      foo() = %d (empty variant, nop-ed call site)@."
    (H.call s "foo" []);

  (* 6. revert restores the original dynamic behavior byte-for-byte *)
  ignore (H.revert s);
  H.set s "A" 1;
  H.set s "B" 0;
  Format.printf "reverted, A=1 B=0:    foo() = %d (dynamic again)@." (H.call s "foo" []);

  (* 7. out-of-domain values fall back to the generic function *)
  H.set s "A" 3;
  H.set s "B" 4;
  ignore (H.commit s);
  Format.printf "committed A=3 B=4:    foo() = %d, fallbacks = [%s]@." (H.call s "foo" [])
    (String.concat "; " (Core.Runtime.fallbacks s.H.runtime));
  Format.printf "@.done.@."
