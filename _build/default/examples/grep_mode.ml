(* User-space scenario: grep's locale-dependent matcher mode.

     dune exec examples/grep_mode.exe

   At startup grep decides from the locale and the pattern whether the
   matcher must handle multi-byte characters; the mode is fixed for the
   rest of the run, so it is a perfect commit-once switch (Section 6.2.3). *)

module H = Mv_workloads.Harness
module Grep = Mv_workloads.Grep

let () =
  Format.printf "--- grep: binding the multi-byte mode at startup ---@.";

  (* "LANG=C": single-byte locale, fast path *)
  let s = Grep.prepare Grep.Multiversed ~mb_mode:0 in
  let matches = H.call s "grep_scan" [ Grep.buffer_size ] in
  let cpb = Grep.cycles_per_byte ~rounds:10 Grep.Multiversed ~mb_mode:0 in
  Format.printf "@.LANG=C (mb_mode=0, committed):@.";
  Format.printf "  matches for \"a.a\": %d@." matches;
  Format.printf "  %.3f cycles/byte, projected %.2f s for a 2 GiB file@." cpb
    (Grep.seconds_for_2gib cpb);

  (* "LANG=en_US.UTF-8": the matcher must validate multi-byte sequences *)
  let s8 = Grep.prepare Grep.Multiversed ~mb_mode:1 in
  let matches8 = H.call s8 "grep_scan" [ Grep.buffer_size ] in
  let cpb8 = Grep.cycles_per_byte ~rounds:10 Grep.Multiversed ~mb_mode:1 in
  Format.printf "@.LANG=en_US.UTF-8 (mb_mode=1, committed):@.";
  Format.printf "  matches for \"a.a\": %d@." matches8;
  Format.printf "  %.3f cycles/byte, projected %.2f s for a 2 GiB file@." cpb8
    (Grep.seconds_for_2gib cpb8);

  (* comparison with the unmodified build *)
  let plain = Grep.cycles_per_byte ~rounds:10 Grep.Plain ~mb_mode:0 in
  Format.printf "@.w/o multiverse (mode checked dynamically): %.3f cycles/byte@." plain;
  Format.printf "multiverse saves %.2f%% end to end (paper: 2.73%%)@."
    ((plain -. cpb) /. plain *. 100.0);
  Format.printf "done.@."
