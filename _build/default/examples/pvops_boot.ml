(* Kernel scenario: boot-time binding of paravirtual operations.

     dune exec examples/pvops_boot.exe

   The same kernel image must run on bare metal and as a Xen PV guest.
   PV-Ops are multiversed function-pointer switches: early boot detects the
   platform, assigns the backend, and commits — indirect calls become
   direct calls, and one-instruction native bodies are inlined into the
   call sites (Section 6.1). *)

module H = Mv_workloads.Harness
module Pvops = Mv_workloads.Pvops
module Machine = Mv_vm.Machine

let boot_and_measure platform =
  let s = H.session1 ~platform (Pvops.source Pvops.Multiverse) in
  (* early boot: platform detection assigns the PV-Op backends *)
  Pvops.boot s Pvops.Multiverse platform;
  let m = H.measure ~samples:60 ~calls:100 s ~loop_fn:"bench_loop" in
  (s, m.H.m_mean)

let () =
  Format.printf "--- PV-Ops: one kernel image, two platforms ---@.";

  Format.printf "@.booting on bare metal...@.";
  let native, cycles_native = boot_and_measure Machine.Native in
  Format.printf "  irq_disable+irq_enable: %.2f cycles@." cycles_native;
  let stats = Core.Runtime.stats native.H.runtime in
  Format.printf "  call sites inlined: %d (cli/sti bodies fit in the call site)@."
    stats.Core.Runtime.st_sites_inlined;
  ignore (H.call native "bench_loop" [ 10 ]);
  Format.printf "  machine IRQ state tracks the calls: irq_enabled=%b@."
    native.H.machine.Machine.irq_enabled;

  Format.printf "@.booting the same image as a Xen PV guest...@.";
  let xen, cycles_xen = boot_and_measure Machine.Xen in
  Format.printf "  irq_disable+irq_enable: %.2f cycles (event-channel masking)@."
    cycles_xen;
  ignore (H.call xen "bench_loop" [ 10 ]);
  Format.printf "  xen_mask after the loop: %d (interrupts enabled)@."
    (H.get xen "xen_mask");
  Format.printf
    "  note: executing a raw cli in the guest would fault — the PV binding\n\
    \  is what makes the same binary run here at all.@.";

  Format.printf "@.switching the native kernel's backend at run time (re-commit):@.";
  H.set_fnptr native "pv_irq_disable" "xen_cli";
  H.set_fnptr native "pv_irq_enable" "xen_sti";
  ignore (H.commit native);
  let m = H.measure ~samples:60 ~calls:100 native ~loop_fn:"bench_loop" in
  Format.printf "  rebound to the xen backend: %.2f cycles@." m.H.m_mean;
  Format.printf "done.@."
