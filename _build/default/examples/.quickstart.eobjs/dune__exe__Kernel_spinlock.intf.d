examples/kernel_spinlock.mli:
