examples/pvops_boot.ml: Core Format Mv_vm Mv_workloads
