examples/grep_mode.mli:
