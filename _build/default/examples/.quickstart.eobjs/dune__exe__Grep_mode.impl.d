examples/grep_mode.ml: Format Mv_workloads
