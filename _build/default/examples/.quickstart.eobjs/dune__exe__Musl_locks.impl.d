examples/musl_locks.ml: Format Mv_workloads
