examples/transaction.mli:
