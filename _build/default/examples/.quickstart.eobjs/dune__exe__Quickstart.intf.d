examples/quickstart.mli:
