examples/musl_locks.mli:
