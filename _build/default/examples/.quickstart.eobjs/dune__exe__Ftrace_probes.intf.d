examples/ftrace_probes.mli:
