examples/kernel_spinlock.ml: Core Format Mv_workloads
