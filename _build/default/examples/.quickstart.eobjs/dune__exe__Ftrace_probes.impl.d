examples/ftrace_probes.ml: Format List Mv_workloads String
