examples/transaction.ml: Core Format Mv_workloads
