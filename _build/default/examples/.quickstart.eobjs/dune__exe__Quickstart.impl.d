examples/quickstart.ml: Core Format List Mv_link Mv_workloads Option String
