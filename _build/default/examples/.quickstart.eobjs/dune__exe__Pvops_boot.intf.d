examples/pvops_boot.mli:
