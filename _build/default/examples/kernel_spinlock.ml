(* Kernel scenario: CPU hotplug with multiversed lock elision.

     dune exec examples/kernel_spinlock.exe

   The paper's motivating story (Section 1): a machine boots with one CPU
   (cloud instance, energy saving), so spinlock acquisition can be elided —
   but CPUs may be added at run time.  With multiverse the kernel runs
   uniprocessor-specialized spinlocks until hotplug, then re-commits:

     void hotplug_add_cpu() {
       nrcpu++;
       config_smp = true;
       multiverse_commit();
     }                                                                    *)

module H = Mv_workloads.Harness
module Spinlock = Mv_workloads.Spinlock

let source =
  Spinlock.source Spinlock.Multiverse
  ^ {|
  int nrcpu = 1;

  // critical section under the multiversed spinlock
  int counter;
  void do_work(int n) {
    for (int i = 0; i < n; i = i + 1) {
      spin_irq_lock();
      counter = counter + 1;
      spin_irq_unlock();
    }
  }
|}

let cycles_per_op s =
  let m = H.measure ~samples:60 ~calls:100 s ~loop_fn:"bench_loop" in
  m.H.m_mean

let () =
  Format.printf "--- kernel spinlock elision with CPU hotplug ---@.";
  let s = H.session1 source in

  (* boot on a single CPU: bind the UP variants *)
  H.set s "config_smp" 0;
  let bound = H.commit s in
  Format.printf "@.boot (1 CPU): multiverse_commit -> %d functions bound@." bound;
  Format.printf "lock+unlock: %.2f cycles (lock acquisition elided)@." (cycles_per_op s);
  ignore (H.call s "do_work" [ 1000 ]);
  Format.printf "critical sections executed: counter = %d@." (H.get s "counter");

  (* hotplug_add_cpu(): switch to SMP at run time *)
  Format.printf "@.hotplug_add_cpu(): nrcpu=2, config_smp=1, multiverse_commit()@.";
  H.set s "nrcpu" 2;
  H.set s "config_smp" 1;
  ignore (H.commit s);
  Format.printf "lock+unlock: %.2f cycles (real atomic acquisition)@." (cycles_per_op s);
  ignore (H.call s "do_work" [ 1000 ]);
  Format.printf "critical sections executed: counter = %d, lock_word = %d@."
    (H.get s "counter") (H.get s "lock_word");

  (* and back: the cloud instance drops to one CPU again *)
  Format.printf "@.hotplug_remove_cpu(): back to uniprocessor@.";
  H.set s "nrcpu" 1;
  H.set s "config_smp" 0;
  ignore (H.commit s);
  Format.printf "lock+unlock: %.2f cycles (elided again)@." (cycles_per_op s);

  let stats = Core.Runtime.stats s.H.runtime in
  Format.printf
    "@.runtime stats: %d call sites, %d inlined, %d retargeted, %d patches so far@."
    stats.Core.Runtime.st_callsites stats.Core.Runtime.st_sites_inlined
    stats.Core.Runtime.st_sites_retargeted stats.Core.Runtime.st_patches;
  Format.printf "done.@."
