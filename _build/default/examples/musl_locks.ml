(* User-space scenario: musl-style lock elision around thread creation.

     dune exec examples/musl_locks.exe

   musl maintains [threads_minus_1] on every pthread_create/exit.  The
   multiversed libc commits the single-threaded specialization at startup;
   pthread_create re-commits *before* the second thread exists, and
   pthread_exit re-commits after it is gone (Section 6.2.2). *)

module H = Mv_workloads.Harness
module Musl = Mv_workloads.Musl

let cycles s loop =
  let m = H.measure ~samples:60 ~calls:200 s ~loop_fn:loop in
  m.H.m_mean

let () =
  Format.printf "--- mini-musl: thread-count-driven lock elision ---@.";
  let s = H.session1 (Musl.source Musl.Multiversed) in

  (* process start: one thread *)
  H.set s "threads_minus_1" 0;
  ignore (H.commit s);
  Format.printf "@.single-threaded (committed):@.";
  Format.printf "  random():  %6.2f cycles@." (cycles s "bench_random");
  Format.printf "  malloc(1): %6.2f cycles@." (cycles s "bench_malloc1");
  Format.printf "  fputc():   %6.2f cycles@." (cycles s "bench_fputc");

  (* pthread_create: commit the multi-threaded state BEFORE the second
     thread starts executing, so it never sees elided locks *)
  Format.printf "@.pthread_create(): threads_minus_1=1, multiverse_commit()@.";
  H.set s "threads_minus_1" 1;
  ignore (H.commit s);
  Format.printf "multi-threaded (committed):@.";
  Format.printf "  random():  %6.2f cycles@." (cycles s "bench_random");
  Format.printf "  malloc(1): %6.2f cycles@." (cycles s "bench_malloc1");
  Format.printf "  fputc():   %6.2f cycles@." (cycles s "bench_fputc");

  (* locking actually happens now *)
  ignore (H.call s "bench_malloc1" [ 10 ]);
  Format.printf "  (malloc lock word after use: %d — released)@." (H.get s "malloc_lock");

  (* pthread_exit of the second thread: elide again *)
  Format.printf "@.pthread_exit(): threads_minus_1=0, multiverse_commit()@.";
  H.set s "threads_minus_1" 0;
  ignore (H.commit s);
  Format.printf "single-threaded again:@.";
  Format.printf "  malloc(1): %6.2f cycles@." (cycles s "bench_malloc1");

  (* allocator stays functional across all the patching *)
  let p = H.call s "malloc" [ 24 ] in
  let q = H.call s "malloc" [ 24 ] in
  Format.printf "@.malloc(24) twice -> 0x%x, 0x%x (distinct: %b)@." p q (p <> q);
  ignore (H.call s "free_" [ p ]);
  ignore (H.call s "free_" [ q ]);
  let r = H.call s "malloc" [ 24 ] in
  Format.printf "after free, malloc(24) reuses the bin: 0x%x (= last freed: %b)@." r (r = q);
  Format.printf "done.@."
