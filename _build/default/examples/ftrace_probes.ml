(* Kernel scenario: Ftrace-style zero-cost tracing probes.

     dune exec examples/ftrace_probes.exe

   Section 1.1 of the paper lists Ftrace among the kernel's home-grown
   binary-patching mechanisms.  Multiverse subsumes it: every instrumented
   function starts with a multiversed probe; with tracing committed off the
   empty probe variant is inlined as nops into every site, and enabling
   tracing at run time re-patches the probes back in. *)

module H = Mv_workloads.Harness
module T = Mv_workloads.Tracing

let cycles s =
  (H.measure ~samples:60 ~calls:100 s ~loop_fn:"bench_loop").H.m_mean

let () =
  Format.printf "--- ftrace-style probes via multiverse ---@.";
  let s = T.prepare T.Multiversed ~enabled:false in

  Format.printf "@.boot: tracing off, multiverse_commit()@.";
  Format.printf "  %d probe sites inlined as nops@." (T.nop_sites s);
  Format.printf "  syscall triple: %.2f cycles (zero-cost probes)@." (cycles s);
  ignore (H.call s "bench_loop" [ 1000 ]);
  Format.printf "  events recorded while off: %d@." (H.get s "trace_pos");

  Format.printf "@.echo 1 > tracing_on: trace_enabled=1, multiverse_commit()@.";
  H.set s "trace_enabled" 1;
  ignore (H.commit s);
  Format.printf "  syscall triple: %.2f cycles (recording)@." (cycles s);
  ignore (H.call s "bench_loop" [ 2 ]);
  Format.printf "  ring tail: [%s]  (vfs_write=2, vfs_read=1, sys_getpid=3)@."
    (String.concat "; " (List.map string_of_int (T.ring_tail s ~n:6)));

  Format.printf "@.echo 0 > tracing_on: back to nops@.";
  H.set s "trace_enabled" 0;
  ignore (H.commit s);
  Format.printf "  syscall triple: %.2f cycles@." (cycles s);

  (* comparison: what the probes would cost with a plain dynamic check *)
  let plain = T.prepare T.Plain ~enabled:false in
  Format.printf "@.for reference, dynamically-checked probes: %.2f cycles@."
    (cycles plain);
  Format.printf "done.@."
