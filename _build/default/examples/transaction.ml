(* The Section 2 transaction pattern: consistency is the caller's job.

     dune exec examples/transaction.exe

   Multiverse deliberately performs no synchronization; the paper shows how
   a subsystem wraps switch writes, per-switch commits and an object-layout
   translation into its own transaction:

     void subsystem_set_config(bool _A, bool _B) {
       wait_sync_and_lock(&subsystem);
       A = _A; multiverse_commit_refs(&A);
       B = _B; multiverse_commit_refs(&B);
       translate_objects(&subsystem);
       unlock(&subsystem);
     }

   Here the "subsystem" stores records whose layout depends on switch B
   (compact vs padded), so the translation step really matters. *)

module H = Mv_workloads.Harness
module Runtime = Core.Runtime

let source =
  {|
  multiverse bool compress;     // A: transform values on access
  multiverse bool wide_layout;  // B: 16-byte vs 8-byte records

  int subsystem_lock;
  int store[512];
  int count;

  void lock_subsystem() {
    while (__atomic_xchg(&subsystem_lock, 1)) { __pause(); }
  }
  void unlock_subsystem() {
    subsystem_lock = 0;
  }

  // record i lives at store + i*stride; stride depends on wide_layout
  multiverse int stride() {
    if (wide_layout) { return 16; }
    return 8;
  }

  multiverse int encode(int v) {
    if (compress) { return v / 2; }
    return v;
  }

  multiverse int decode(int v) {
    if (compress) { return v * 2; }
    return v;
  }

  void put(int i, int v) {
    ptr p = store + (i * stride());
    *p = encode(v);
  }

  int get_(int i) {
    ptr p = store + (i * stride());
    return decode(*p);
  }

  int checksum(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
      s = s + get_(i);
    }
    return s;
  }

  void fill(int n) {
    count = n;
    for (int i = 0; i < n; i++) {
      put(i, i * 10);
    }
  }

  // translate_objects: rewrite every record for the new layout/encoding.
  // When records grow, move from the top down; when they shrink, from the
  // bottom up — otherwise the copy would clobber records not yet moved.
  void translate_objects(int old_stride, int old_compress) {
    int new_stride = stride();
    if (new_stride > old_stride) {
      for (int i = count - 1; i >= 0; i--) {
        ptr src = store + (i * old_stride);
        int raw = *src;
        put(i, old_compress ? raw * 2 : raw);
      }
    } else {
      for (int i = 0; i < count; i++) {
        ptr src = store + (i * old_stride);
        int raw = *src;
        put(i, old_compress ? raw * 2 : raw);
      }
    }
  }
|}

let set_config s a b =
  let img = s.H.program.Core.Compiler.p_image in
  let old_stride = H.call s "stride" [] in
  let old_compress = H.get s "compress" in
  Format.printf
    "@.subsystem_set_config(compress=%d, wide=%d):@.  wait_sync_and_lock()@." a b;
  ignore (H.call s "lock_subsystem" []);
  H.set s "compress" a;
  Format.printf "  compress=%d; multiverse_commit_refs(&compress) -> %d@." a
    (Runtime.commit_refs s.H.runtime "compress");
  H.set s "wide_layout" b;
  Format.printf "  wide_layout=%d; multiverse_commit_refs(&wide_layout) -> %d@." b
    (Runtime.commit_refs s.H.runtime "wide_layout");
  ignore (H.call s "translate_objects" [ old_stride; old_compress ]);
  Format.printf "  translate_objects(): records rewritten for the new layout@.";
  ignore (H.call s "unlock_subsystem" []);
  Format.printf "  unlock()@.";
  ignore img

let () =
  Format.printf "--- the Section 2 transaction pattern ---@.";
  let s = H.session1 source in
  H.set s "compress" 0;
  H.set s "wide_layout" 0;
  ignore (H.commit s);
  ignore (H.call s "fill" [ 100 ]);
  let reference = H.call s "checksum" [ 100 ] in
  Format.printf "@.initial state: compact, uncompressed; checksum = %d@." reference;

  set_config s 1 1;
  Format.printf "checksum after transaction: %d  (data preserved: %b)@."
    (H.call s "checksum" [ 100 ])
    (H.call s "checksum" [ 100 ] = reference);

  set_config s 0 1;
  Format.printf "checksum after second transaction: %d  (data preserved: %b)@."
    (H.call s "checksum" [ 100 ])
    (H.call s "checksum" [ 100 ] = reference);

  set_config s 1 0;
  Format.printf "checksum after shrinking back: %d  (data preserved: %b)@."
    (H.call s "checksum" [ 100 ])
    (H.call s "checksum" [ 100 ] = reference);

  Format.printf
    "@.every access between transactions runs fully-specialized variants —\n\
     no layout or compression checks on the hot path.@.";
  Format.printf "done.@."
