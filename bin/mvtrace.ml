(* mvtrace — observability analysis for multiverse workloads.

   Builds a Mini-C workload, runs it under the requested recorders, and
   renders the results; or compares two bench JSON documents offline.

     mvtrace flame prog.mvc --set config_smp=1 --commit --run bench \
         --out prog.folded --chrome prog.trace.json
     mvtrace top prog.mvc --commit --run bench
     mvtrace spans prog.mvc --commit --run bench
     mvtrace diff BENCH_results.json fresh.json --gate 5

   `flame` emits folded stacks (flamegraph.pl / speedscope input) and/or
   a Chrome trace_event JSON; `top` prints the hot-stack table; `spans`
   prints patching-span latency statistics and the event/metrics
   summary; `diff` structurally compares two mv-bench-rows/1 documents
   and, with --gate PCT, exits non-zero when any leaf drifts by more
   than PCT percent. *)

module Image = Mv_link.Image
module Harness = Mv_workloads.Harness

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Build a session and run the workload function under whatever
   recorders the subcommand armed via [arm].  Shared by flame/top/spans. *)
let run_workload ~files ~sets ~padding ~commit ~fn ~args ~arm =
  let sources = List.map (fun f -> (Filename.basename f, read_file f)) files in
  let program = Core.Compiler.build ~callsite_padding:padding sources in
  List.iter (fun w -> Format.eprintf "%s@." w) (Core.Compiler.warnings program);
  let img = program.p_image in
  let machine = Mv_vm.Machine.create img in
  let runtime =
    Core.Runtime.create img ~flush:(fun ~addr ~len ->
        Mv_vm.Machine.flush_icache machine ~addr ~len)
  in
  let session = Harness.of_parts program machine runtime in
  arm session;
  List.iter (fun (name, v) -> Image.write img (Image.symbol img name) v 8) sets;
  if commit then begin
    let n = Core.Runtime.commit runtime in
    Format.eprintf "multiverse_commit: %d entities bound@." n
  end;
  let result = Harness.call session fn args in
  Format.eprintf "%s(%s) = %d@." fn
    (String.concat ", " (List.map string_of_int args))
    result;
  session

(* ------------------------------------------------------------------ *)

open Cmdliner

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"Mini-C source files")

let set_arg =
  Arg.(
    value & opt_all (pair ~sep:'=' string int) []
    & info [ "set" ] ~docv:"VAR=VAL" ~doc:"Set a global before running")

let commit_arg =
  Arg.(value & flag & info [ "commit" ] ~doc:"Call multiverse_commit before running")

let run_arg =
  Arg.(
    value & opt string "main"
    & info [ "run" ] ~docv:"FN" ~doc:"Workload function to run (default $(b,main))")

let args_arg =
  Arg.(value & opt_all int [] & info [ "arg" ] ~docv:"N" ~doc:"Integer argument for --run")

let padding_arg =
  Arg.(
    value & opt int 0
    & info [ "padding" ] ~docv:"N" ~doc:"Nop-pad call sites of multiversed symbols")

let interval_arg =
  Arg.(
    value & opt int 97
    & info [ "interval" ] ~docv:"N"
        ~doc:"Sampling period in instructions (default 97)")

let handle_errors f =
  try f () with
  | Core.Compiler.Compile_error m ->
      Format.eprintf "error: %s@." m;
      2
  | Mv_vm.Machine.Fault m ->
      Format.eprintf "machine fault: %s@." m;
      2
  | Image.Segfault m ->
      Format.eprintf "segfault: %s@." m;
      2
  | Sys_error m ->
      Format.eprintf "error: %s@." m;
      2

(* --- flame ---------------------------------------------------------- *)

let flame_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE"
        ~doc:"Write folded stacks to $(docv) (default: stdout)")

let chrome_arg =
  Arg.(
    value & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:"Also record trace events and write a Chrome trace_event JSON to $(docv)")

let flame_main files sets commit fn args padding interval out chrome =
  handle_errors (fun () ->
      let session =
        run_workload ~files ~sets ~padding ~commit ~fn ~args ~arm:(fun s ->
            Harness.enable_stack_profiling ~interval s;
            if chrome <> None then Harness.enable_tracing s)
      in
      let folded = Harness.folded_dump session in
      (match out with
      | Some path ->
          write_file path folded;
          Format.eprintf "folded stacks -> %s@." path
      | None -> print_string folded);
      (match chrome with
      | Some path ->
          write_file path (Harness.trace_dump session);
          Format.eprintf "chrome trace: %d event(s) -> %s@."
            (List.length (Harness.trace_events session))
            path
      | None -> ());
      0)

let flame_cmd =
  let doc = "Emit folded stacks (flamegraph.pl / speedscope input)" in
  Cmd.v
    (Cmd.info "flame" ~doc)
    Term.(
      const flame_main $ files_arg $ set_arg $ commit_arg $ run_arg $ args_arg
      $ padding_arg $ interval_arg $ flame_out_arg $ chrome_arg)

(* --- top ------------------------------------------------------------ *)

let limit_arg =
  Arg.(
    value & opt int 10
    & info [ "limit"; "n" ] ~docv:"N" ~doc:"Rows to print (default 10)")

let top_main files sets commit fn args padding interval limit =
  handle_errors (fun () ->
      let session =
        run_workload ~files ~sets ~padding ~commit ~fn ~args ~arm:(fun s ->
            Harness.enable_stack_profiling ~interval s)
      in
      (match session.Harness.stackprof with
      | Some sp ->
          Format.printf "%a@." (Mv_obs.Stackprof.pp ~limit) sp;
          Format.printf "variant share: %.1f%%@."
            (100.0 *. Mv_obs.Stackprof.variant_share sp)
      | None -> ());
      0)

let top_cmd =
  let doc = "Print the hot-stack table" in
  Cmd.v
    (Cmd.info "top" ~doc)
    Term.(
      const top_main $ files_arg $ set_arg $ commit_arg $ run_arg $ args_arg
      $ padding_arg $ interval_arg $ limit_arg)

(* --- spans ---------------------------------------------------------- *)

let spans_metrics_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Also write the metrics-registry JSON ($(b,mv-metrics-registry/1)) to $(docv)")

let spans_main files sets commit fn args padding metrics_out =
  handle_errors (fun () ->
      let session =
        run_workload ~files ~sets ~padding ~commit ~fn ~args ~arm:(fun s ->
            Harness.enable_tracing s;
            Harness.enable_metrics s)
      in
      let events = Harness.trace_events session in
      Format.printf "%a@." Mv_obs.Analyze.pp_span_stats
        (Mv_obs.Analyze.span_stats events);
      Format.printf "event counts:@.";
      List.iter
        (fun (tag, n) -> Format.printf "  %-20s %d@." tag n)
        (Mv_obs.Analyze.event_counts events);
      (match (metrics_out, Harness.metrics session) with
      | Some path, Some m ->
          Core.Runtime.stats_metrics (Core.Runtime.stats session.Harness.runtime) m;
          write_file path (Mv_obs.Json.to_string_pretty (Mv_obs.Metrics.to_json m));
          Format.eprintf "metrics registry -> %s@." path
      | _ -> ());
      0)

let spans_cmd =
  let doc = "Print patching-span latency statistics" in
  Cmd.v
    (Cmd.info "spans" ~doc)
    Term.(
      const spans_main $ files_arg $ set_arg $ commit_arg $ run_arg $ args_arg
      $ padding_arg $ spans_metrics_arg)

(* --- diff ----------------------------------------------------------- *)

let base_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"BASE" ~doc:"Baseline bench JSON")

let fresh_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"FRESH" ~doc:"Fresh bench JSON")

let gate_arg =
  Arg.(
    value & opt (some float) None
    & info [ "gate" ] ~docv:"PCT"
        ~doc:
          "Exit non-zero when any compared leaf drifts by more than $(docv) percent \
           (either direction: on a deterministic simulator any drift means the \
           baseline is stale)")

let all_arg =
  Arg.(
    value & flag
    & info [ "all" ] ~doc:"Show unchanged leaves too, not just the drifted ones")

let no_skip_arg =
  Arg.(
    value & flag
    & info [ "no-skip" ]
        ~doc:
          "Compare host wall-clock series too (commit_ms/revert_ms fields and the \
           host-ms row are skipped by default: they are not simulator-deterministic)")

let diff_json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write the delta list as JSON to $(docv)")

let diff_main base fresh gate all no_skip json_out =
  handle_errors (fun () ->
      let parse path =
        match Mv_obs.Json.parse (read_file path) with
        | Ok j -> Ok j
        | Error m -> Error (Printf.sprintf "%s: %s" path m)
      in
      match (parse base, parse fresh) with
      | Error m, _ | _, Error m ->
          Format.eprintf "error: %s@." m;
          2
      | Ok base_j, Ok fresh_j -> (
          let skip =
            if no_skip then Some (fun ~label:_ ~field:_ -> false) else None
          in
          match Mv_obs.Analyze.bench_diff ?skip ~base:base_j ~fresh:fresh_j () with
          | Error m ->
              Format.eprintf "error: %s@." m;
              2
          | Ok deltas ->
              Format.printf "%a@."
                (Mv_obs.Analyze.pp_deltas ~only_changed:(not all))
                deltas;
              (match json_out with
              | Some path ->
                  write_file path
                    (Mv_obs.Json.to_string_pretty (Mv_obs.Analyze.deltas_json deltas))
              | None -> ());
              (match gate with
              | None -> 0
              | Some threshold -> (
                  match Mv_obs.Analyze.regressions ~threshold deltas with
                  | [] ->
                      Format.printf "gate: ok (no leaf beyond %.2f%%)@." threshold;
                      0
                  | bad ->
                      Format.printf "gate: FAIL — %d leaf(s) beyond %.2f%%:@."
                        (List.length bad) threshold;
                      List.iter
                        (fun d -> Format.printf "  %a@." Mv_obs.Analyze.pp_delta d)
                        bad;
                      1))))

let diff_cmd =
  let doc = "Structurally compare two bench JSON documents" in
  Cmd.v
    (Cmd.info "diff" ~doc)
    Term.(
      const diff_main $ base_arg $ fresh_arg $ gate_arg $ all_arg $ no_skip_arg
      $ diff_json_arg)

(* ------------------------------------------------------------------ *)

let cmd =
  let doc = "Observability analysis for multiverse workloads" in
  Cmd.group (Cmd.info "mvtrace" ~doc) [ flame_cmd; top_cmd; spans_cmd; diff_cmd ]

let () = exit (Cmd.eval' cmd)
