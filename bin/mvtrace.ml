(* mvtrace — observability analysis for multiverse workloads.

   Builds a Mini-C workload, runs it under the requested recorders, and
   renders the results; or compares two bench JSON documents offline.

     mvtrace flame prog.mvc --set config_smp=1 --commit --run bench \
         --out prog.folded --chrome prog.trace.json
     mvtrace top prog.mvc --commit --run bench
     mvtrace spans prog.mvc --commit --run bench
     mvtrace heat prog.mvc --set config_smp=1 --commit --run bench \
         --budget 64 --json prog.heat.json
     mvtrace variants prog.mvc --set config_smp=1 --commit --run bench
     mvtrace timeline prog.mvc --harts 3 --seed 7 --run worker --chrome t.json
     mvtrace blame prog.mvc --harts 3 --seed 7 --run worker --slow-hart 2
     mvtrace postmortem smp-artifacts/trap-1.flight.json
     mvtrace diff BENCH_results.json fresh.json --gate 5

   `flame` emits folded stacks (flamegraph.pl / speedscope input) and/or
   a Chrome trace_event JSON; `top` prints the hot-stack table; `spans`
   prints patching-span latency statistics and the event/metrics
   summary; `heat` prints the per-region code heatmap (block hits,
   executed-byte coverage, decayed hotness with ASCII bars), optionally
   the eviction advisor's keep/evict plan under --budget, and exports a
   mv-heat/1 JSON with --json; `variants` prints the variant lifecycle
   table (installs, residency, heat, advisor verdict); `timeline`
   drives a pinned-seed SMP patch storm and renders per-hart event
   lanes (ASCII and/or Chrome trace, one lane per hart); `blame` runs
   the same storm and attributes each stop_machine rendezvous' latency
   to the hart that released it last (with optional slow-ack chaos to
   inject a straggler); `postmortem` pretty-prints and causally
   analyzes a mv-flight/1 flight-recorder dump; `diff` structurally
   compares two mv-bench-rows/1 documents and, with --gate PCT, exits
   non-zero when any leaf drifts by more than PCT percent (writing a
   mv-flight/1 dump of the regressions when MV_SMP_ARTIFACT_DIR is
   set).

   Unknown subcommands or flags exit 2 with a usage line naming every
   subcommand (keep that list, this comment, and the Cmd.group below in
   sync). *)

module Image = Mv_link.Image
module Harness = Mv_workloads.Harness

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Build a session and run the workload function under whatever
   recorders the subcommand armed via [arm].  Shared by flame/top/spans. *)
let run_workload ~files ~sets ~padding ~lazy_budget ~commit ~fn ~args ~arm =
  let sources = List.map (fun f -> (Filename.basename f, read_file f)) files in
  let program =
    Core.Compiler.build ~callsite_padding:padding
      ~lazy_variants:(lazy_budget <> None)
      sources
  in
  List.iter (fun w -> Format.eprintf "%s@." w) (Core.Compiler.warnings program);
  let img = program.p_image in
  let machine = Mv_vm.Machine.create img in
  let runtime =
    Core.Runtime.create img ~flush:(fun ~addr ~len ->
        Mv_vm.Machine.flush_icache machine ~addr ~len)
  in
  (* --lazy: demand-driven materialization; 0 means the whole region *)
  (match lazy_budget with
  | None -> ()
  | Some b ->
      let budget = if b = 0 then None else Some b in
      Core.Runtime.enable_lazy ?budget runtime
        ~recipes:(Core.Compiler.recipes program)
        ~call_pad:(Core.Compiler.call_pad program));
  let session = Harness.of_parts program machine runtime in
  arm session;
  List.iter (fun (name, v) -> Image.write img (Image.symbol img name) v 8) sets;
  if commit then begin
    let n = Core.Runtime.commit runtime in
    Format.eprintf "multiverse_commit: %d entities bound@." n
  end;
  let result = Harness.call session fn args in
  Format.eprintf "%s(%s) = %d@." fn
    (String.concat ", " (List.map string_of_int args))
    result;
  session

(* ------------------------------------------------------------------ *)

open Cmdliner

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"Mini-C source files")

let set_arg =
  Arg.(
    value & opt_all (pair ~sep:'=' string int) []
    & info [ "set" ] ~docv:"VAR=VAL" ~doc:"Set a global before running")

let commit_arg =
  Arg.(value & flag & info [ "commit" ] ~doc:"Call multiverse_commit before running")

let run_arg =
  Arg.(
    value & opt string "main"
    & info [ "run" ] ~docv:"FN" ~doc:"Workload function to run (default $(b,main))")

let args_arg =
  Arg.(value & opt_all int [] & info [ "arg" ] ~docv:"N" ~doc:"Integer argument for --run")

let padding_arg =
  Arg.(
    value & opt int 0
    & info [ "padding" ] ~docv:"N" ~doc:"Nop-pad call sites of multiversed symbols")

let lazy_arg =
  Arg.(
    value
    & opt ~vopt:(Some 0) (some int) None
    & info [ "lazy" ] ~docv:"BYTES"
        ~doc:
          "Materialize variants on demand instead of pre-expanding them, \
           under a resident byte budget of $(docv) (0 or omitted value: \
           the whole variant-text region)")

let interval_arg =
  Arg.(
    value & opt int 97
    & info [ "interval" ] ~docv:"N"
        ~doc:"Sampling period in instructions (default 97)")

let handle_errors f =
  try f () with
  | Core.Compiler.Compile_error m ->
      Format.eprintf "error: %s@." m;
      2
  | Mv_vm.Machine.Fault m ->
      Format.eprintf "machine fault: %s@." m;
      2
  | Image.Segfault m ->
      Format.eprintf "segfault: %s@." m;
      2
  | Sys_error m ->
      Format.eprintf "error: %s@." m;
      2

(* --- flame ---------------------------------------------------------- *)

let flame_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE"
        ~doc:"Write folded stacks to $(docv) (default: stdout)")

let chrome_arg =
  Arg.(
    value & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:"Also record trace events and write a Chrome trace_event JSON to $(docv)")

let flame_main files sets commit fn args padding lazy_budget interval out chrome =
  handle_errors (fun () ->
      let session =
        run_workload ~files ~sets ~padding ~lazy_budget ~commit ~fn ~args
          ~arm:(fun s ->
            Harness.enable_stack_profiling ~interval s;
            if chrome <> None then Harness.enable_tracing s)
      in
      let folded = Harness.folded_dump session in
      (match out with
      | Some path ->
          write_file path folded;
          Format.eprintf "folded stacks -> %s@." path
      | None -> print_string folded);
      (match chrome with
      | Some path ->
          write_file path (Harness.trace_dump session);
          Format.eprintf "chrome trace: %d event(s) -> %s@."
            (List.length (Harness.trace_events session))
            path
      | None -> ());
      0)

let flame_cmd =
  let doc = "Emit folded stacks (flamegraph.pl / speedscope input)" in
  Cmd.v
    (Cmd.info "flame" ~doc)
    Term.(
      const flame_main $ files_arg $ set_arg $ commit_arg $ run_arg $ args_arg
      $ padding_arg $ lazy_arg $ interval_arg $ flame_out_arg $ chrome_arg)

(* --- top ------------------------------------------------------------ *)

let limit_arg =
  Arg.(
    value & opt int 10
    & info [ "limit"; "n" ] ~docv:"N" ~doc:"Rows to print (default 10)")

let top_main files sets commit fn args padding lazy_budget interval limit =
  handle_errors (fun () ->
      let session =
        run_workload ~files ~sets ~padding ~lazy_budget ~commit ~fn ~args
          ~arm:(fun s -> Harness.enable_stack_profiling ~interval s)
      in
      (match session.Harness.stackprof with
      | Some sp ->
          Format.printf "%a@." (Mv_obs.Stackprof.pp ~limit) sp;
          Format.printf "variant share: %.1f%%@."
            (100.0 *. Mv_obs.Stackprof.variant_share sp)
      | None -> ());
      0)

let top_cmd =
  let doc = "Print the hot-stack table" in
  Cmd.v
    (Cmd.info "top" ~doc)
    Term.(
      const top_main $ files_arg $ set_arg $ commit_arg $ run_arg $ args_arg
      $ padding_arg $ lazy_arg $ interval_arg $ limit_arg)

(* --- spans ---------------------------------------------------------- *)

let spans_metrics_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Also write the metrics-registry JSON ($(b,mv-metrics-registry/1)) to $(docv)")

let spans_main files sets commit fn args padding lazy_budget metrics_out =
  handle_errors (fun () ->
      let session =
        run_workload ~files ~sets ~padding ~lazy_budget ~commit ~fn ~args
          ~arm:(fun s ->
            Harness.enable_tracing s;
            Harness.enable_metrics s)
      in
      let events = Harness.trace_events session in
      Format.printf "%a@." Mv_obs.Analyze.pp_span_stats
        (Mv_obs.Analyze.span_stats events);
      Format.printf "event counts:@.";
      List.iter
        (fun (tag, n) -> Format.printf "  %-20s %d@." tag n)
        (Mv_obs.Analyze.event_counts events);
      (match (metrics_out, Harness.metrics session) with
      | Some path, Some m ->
          Core.Runtime.stats_metrics (Core.Runtime.stats session.Harness.runtime) m;
          write_file path (Mv_obs.Json.to_string_pretty (Mv_obs.Metrics.to_json m));
          Format.eprintf "metrics registry -> %s@." path
      | _ -> ());
      0)

let spans_cmd =
  let doc = "Print patching-span latency statistics" in
  Cmd.v
    (Cmd.info "spans" ~doc)
    Term.(
      const spans_main $ files_arg $ set_arg $ commit_arg $ run_arg $ args_arg
      $ padding_arg $ lazy_arg $ spans_metrics_arg)

(* --- heat / variants ------------------------------------------------- *)

let budget_arg =
  Arg.(
    value & opt (some int) None
    & info [ "budget" ] ~docv:"BYTES"
        ~doc:
          "Run the eviction advisor: rank resident variants by heat density \
           and keep the densest prefix fitting $(docv) bytes of text")

let heat_json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the $(b,mv-heat/1) heat report to $(docv)")

(* Shared by heat/variants: run the workload with heat telemetry armed,
   then close one decay epoch so the reported hotness is the run's hit
   counts (decayed scores only differ once a caller runs several
   epochs). *)
let run_heat_workload ~files ~sets ~padding ~lazy_budget ~commit ~fn ~args =
  let session =
    run_workload ~files ~sets ~padding ~lazy_budget ~commit ~fn ~args
      ~arm:(fun s -> Harness.enable_heat s)
  in
  Harness.heat_epoch session;
  session

let session_now (s : Harness.session) =
  s.Harness.machine.Mv_vm.Machine.perf.Mv_vm.Perf.cycles

let heat_main files sets commit fn args padding lazy_budget budget json_out =
  handle_errors (fun () ->
      let session =
        run_heat_workload ~files ~sets ~padding ~lazy_budget ~commit ~fn ~args
      in
      (match session.Harness.heat with
      | Some h ->
          Format.printf "%a" Mv_obs.Heat.pp h;
          (match budget with
          | Some budget ->
              Format.printf "@.eviction plan (budget %d bytes):@." budget;
              List.iter
                (fun (a : Mv_obs.Heat.advice) ->
                  Format.printf "  %-6s %-40s heat=%.1f bytes=%d@."
                    (match a.Mv_obs.Heat.ad_verdict with
                    | Mv_obs.Heat.Keep -> "keep"
                    | Mv_obs.Heat.Evict -> "evict")
                    a.Mv_obs.Heat.ad_region.Mv_obs.Heat.r_name
                    a.Mv_obs.Heat.ad_heat a.Mv_obs.Heat.ad_bytes)
                (Mv_obs.Heat.evict_plan h ~budget)
          | None -> ())
      | None -> ());
      (match json_out with
      | Some path ->
          write_file path
            (Mv_obs.Json.to_string_pretty (Harness.heat_json ?budget session));
          Format.eprintf "heat report -> %s@." path
      | None -> ());
      0)

let heat_cmd =
  let doc = "Per-region code heatmap (block hits, coverage, decayed hotness)" in
  Cmd.v
    (Cmd.info "heat" ~doc)
    Term.(
      const heat_main $ files_arg $ set_arg $ commit_arg $ run_arg $ args_arg
      $ padding_arg $ lazy_arg $ budget_arg $ heat_json_arg)

let variants_main files sets commit fn args padding lazy_budget budget json_out =
  handle_errors (fun () ->
      let session =
        run_heat_workload ~files ~sets ~padding ~lazy_budget ~commit ~fn ~args
      in
      (match session.Harness.heat with
      | Some h ->
          Format.printf "%a"
            (Mv_obs.Heat.pp_variants ?budget ~exclude:[] ~now:(session_now session))
            h
      | None -> ());
      (match json_out with
      | Some path ->
          write_file path
            (Mv_obs.Json.to_string_pretty (Harness.heat_json ?budget session));
          Format.eprintf "heat report -> %s@." path
      | None -> ());
      0)

let variants_cmd =
  let doc = "Variant lifecycle table: installs, residency, heat, advisor verdict" in
  Cmd.v
    (Cmd.info "variants" ~doc)
    Term.(
      const variants_main $ files_arg $ set_arg $ commit_arg $ run_arg $ args_arg
      $ padding_arg $ lazy_arg $ budget_arg $ heat_json_arg)

(* --- SMP runs: timeline / blame ------------------------------------- *)

module Smp = Mv_vm.Smp
module Trace = Mv_obs.Trace
module Causal = Mv_obs.Causal
module Json = Mv_obs.Json
module Flight = Mv_obs.Flight

let harts_arg =
  Arg.(
    value & opt int 2
    & info [ "harts" ] ~docv:"N" ~doc:"Number of harts (default 2)")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"S" ~doc:"Scheduler seed (default 42)")

let storms_arg =
  Arg.(
    value & opt int 3
    & info [ "storms" ] ~docv:"N"
        ~doc:
          "Patch-storm rounds: each round steps the schedule, then runs a \
           commit/revert under the stop_machine rendezvous (default 3)")

let steps_arg =
  Arg.(
    value & opt int 120
    & info [ "steps" ] ~docv:"N"
        ~doc:"Scheduler steps between storm rounds (default 120)")

let slow_hart_arg =
  Arg.(
    value & opt (some int) None
    & info [ "slow-hart" ] ~docv:"H"
        ~doc:
          "Chaos: make hart $(docv) a straggler — it keeps executing instead \
           of acking IPIs")

let slow_acks_arg =
  Arg.(
    value & opt int 25
    & info [ "slow-acks" ] ~docv:"N"
        ~doc:
          "How many ack opportunities the slow hart squanders per rendezvous \
           window (default 25; needs --slow-hart)")

(* Build an SMP session, arm tracing, and drive a pinned-seed patch
   storm: every hart runs [fn args]; between rounds of scheduler steps
   the initiator runs a commit (odd rounds) or revert (even rounds), each
   inside a stop_machine rendezvous.  Deterministic per
   (sources, sets, harts, seed, storms, steps, slow). *)
let run_smp_workload ~files ~sets ~harts ~seed ~fn ~args ~storms ~steps ~slow =
  let sources = List.map (fun f -> (Filename.basename f, read_file f)) files in
  let s = Harness.smp_session ~n_harts:harts ~seed sources in
  Harness.enable_smp_tracing s;
  (match slow with
  | Some (h, n) ->
      if h < 0 || h >= harts then failwith "slow hart out of range";
      Smp.set_slow_ack s.Harness.smp (Some (h, n))
  | None -> ());
  List.iter (fun (name, v) -> Harness.smp_set s name v) sets;
  for h = 0 to harts - 1 do
    Harness.smp_start s ~hart:h fn args
  done;
  let more = ref true in
  for round = 1 to storms do
    for _ = 1 to steps do
      if !more then more := Harness.smp_step s
    done;
    if round mod 2 = 1 then ignore (Harness.smp_commit s)
    else ignore (Harness.smp_revert s)
  done;
  Harness.smp_run s;
  s

let slow_of slow_hart slow_acks =
  Option.map (fun h -> (h, slow_acks)) slow_hart

(* --- timeline ------------------------------------------------------- *)

let timeline_chrome_arg =
  Arg.(
    value & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:
          "Write the run as a Chrome trace_event JSON (one lane per hart) to \
           $(docv)")

let timeline_limit_arg =
  Arg.(
    value & opt int 25
    & info [ "limit"; "n" ] ~docv:"N"
        ~doc:"Events to print per hart lane (default 25, newest kept)")

let print_timelines ~limit events =
  List.iter
    (fun (hart, lane) ->
      let n = List.length lane in
      let shown =
        if n <= limit then lane
        else
          (* keep the newest window; the dropped prefix is announced *)
          List.filteri (fun i _ -> i >= n - limit) lane
      in
      Format.printf "── hart %d ── %d event(s)%s@." hart n
        (if n > List.length shown then
           Printf.sprintf " (showing last %d)" (List.length shown)
         else "");
      List.iter
        (fun (st : Trace.stamped) ->
          Format.printf "  [%10.1f] #%d %a@." st.Trace.ts st.Trace.hseq
            Trace.pp_event st.Trace.ev)
        shown)
    (Causal.timelines events);
  match Causal.edges events with
  | [] -> ()
  | edges ->
      Format.printf "cross-hart edges:@.";
      List.iter
        (fun (e : Causal.edge) ->
          Format.printf "  [%10.1f] %-10s id=%d  hart %d -> hart %d@."
            e.Causal.e_ts e.Causal.e_kind e.Causal.e_id e.Causal.e_src
            e.Causal.e_dst)
        edges

let timeline_main files sets harts seed fn args storms steps slow_hart slow_acks
    limit chrome =
  handle_errors (fun () ->
      let s =
        run_smp_workload ~files ~sets ~harts ~seed ~fn ~args ~storms ~steps
          ~slow:(slow_of slow_hart slow_acks)
      in
      let events = Harness.smp_trace_events s in
      print_timelines ~limit events;
      (match chrome with
      | Some path ->
          write_file path (Harness.smp_trace_dump s);
          Format.eprintf "chrome trace: %d event(s) -> %s@." (List.length events)
            path
      | None -> ());
      0)

let timeline_cmd =
  let doc = "Per-hart event lanes for a pinned-seed SMP patch storm" in
  Cmd.v
    (Cmd.info "timeline" ~doc)
    Term.(
      const timeline_main $ files_arg $ set_arg $ harts_arg $ seed_arg $ run_arg
      $ args_arg $ storms_arg $ steps_arg $ slow_hart_arg $ slow_acks_arg
      $ timeline_limit_arg $ timeline_chrome_arg)

(* --- blame ---------------------------------------------------------- *)

let print_blame ~resolve events =
  let rdvs = Causal.rendezvous events in
  if rdvs = [] then Format.printf "no rendezvous in this run@."
  else begin
    Format.printf
      "%-5s %-9s %-10s %-9s %-12s %-10s %s@." "rdv" "initiator" "latency"
      "straggler" "waited" "share" "executing";
    List.iter
      (fun (r : Causal.rendezvous) ->
        match (Causal.straggler r, r.Causal.r_latency) with
        | Some a, Some lat ->
            let share =
              if lat > 0.0 then 100.0 *. a.Causal.a_wait /. lat else 0.0
            in
            Format.printf "%-5d %-9d %-10.1f %-9d %-12.1f %-9.1f%% %s@."
              r.Causal.r_id r.Causal.r_initiator lat a.Causal.a_hart
              a.Causal.a_wait share
              (resolve a.Causal.a_at)
        | _ ->
            Format.printf "%-5d %-9d (uncontended or incomplete)@." r.Causal.r_id
              r.Causal.r_initiator)
      rdvs;
    match Causal.rank_stragglers rdvs with
    | [] -> ()
    | ranks ->
        Format.printf "@.straggler ranking:@.";
        List.iter
          (fun (h : Causal.hart_rank) ->
            Format.printf
              "  hart %d: straggled %d/%d rendezvous, total wait %.1f, max \
               wait %.1f@."
              h.Causal.h_hart h.Causal.h_straggled h.Causal.h_acks
              h.Causal.h_total_wait h.Causal.h_max_wait)
          ranks
  end

let blame_main files sets harts seed fn args storms steps slow_hart slow_acks =
  handle_errors (fun () ->
      let s =
        run_smp_workload ~files ~sets ~harts ~seed ~fn ~args ~storms ~steps
          ~slow:(slow_of slow_hart slow_acks)
      in
      let img = s.Harness.sm_program.Core.Compiler.p_image in
      let resolve pc =
        match Image.symbol_at img pc with
        | Some name -> Printf.sprintf "%s (pc %d)" name pc
        | None -> Printf.sprintf "pc %d" pc
      in
      print_blame ~resolve (Harness.smp_trace_events s);
      0)

let blame_cmd =
  let doc = "Which hart delayed each stop_machine rendezvous, and by how much" in
  Cmd.v
    (Cmd.info "blame" ~doc)
    Term.(
      const blame_main $ files_arg $ set_arg $ harts_arg $ seed_arg $ run_arg
      $ args_arg $ storms_arg $ steps_arg $ slow_hart_arg $ slow_acks_arg)

(* --- postmortem ----------------------------------------------------- *)

let dump_arg =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"DUMP" ~doc:"A $(b,mv-flight/1) dump (*.flight.json)")

let postmortem_limit_arg =
  Arg.(
    value & opt int 25
    & info [ "limit"; "n" ] ~docv:"N"
        ~doc:"Events to print per hart lane (default 25, newest kept)")

let postmortem_main dump limit =
  handle_errors (fun () ->
      match Json.parse (read_file dump) with
      | Error m ->
          Format.eprintf "error: %s does not parse: %s@." dump m;
          2
      | Ok doc ->
          (match Json.member "schema" doc with
          | Some (Json.String s) when s = Flight.schema -> ()
          | Some (Json.String s) ->
              failwith (Printf.sprintf "unsupported schema %S (want %s)" s Flight.schema)
          | _ -> failwith "not a flight dump: no schema member");
          let str k =
            match Json.member k doc with
            | Some (Json.String s) -> s
            | _ -> "?"
          in
          let int k =
            match Json.member k doc with Some (Json.Int n) -> n | _ -> 0
          in
          Format.printf "flight dump: reason=%s clock=%s@." (str "reason")
            (match Json.member "clock" doc with
            | Some (Json.Float f) -> Printf.sprintf "%.1f" f
            | Some (Json.Int n) -> string_of_int n
            | _ -> "?");
          Format.printf "window: %d recorded, %d kept (capacity %d), %d dropped@."
            (int "recorded")
            (int "recorded" - int "dropped")
            (int "capacity") (int "dropped");
          (match Json.member "fault" doc with
          | Some (Json.String m) when m <> "" -> Format.printf "fault: %s@." m
          | _ -> ());
          (match Json.member "harts" doc with
          | Some (Json.List hs) ->
              List.iter
                (fun h ->
                  match
                    (Json.member "hart" h, Json.member "pc" h, Json.member "frames" h)
                  with
                  | Some (Json.Int i), Some (Json.Int pc), Some (Json.List fr) ->
                      Format.printf "hart %d: pc=%d, %d live frame(s)@." i pc
                        (List.length fr)
                  | _ -> ())
                hs
          | _ -> ());
          (match Flight.events_of_dump doc with
          | [] -> Format.printf "no events in the recorded window@."
          | events ->
              Format.printf "@.";
              print_timelines ~limit events;
              let rdvs = Causal.rendezvous events in
              if rdvs <> [] then begin
                Format.printf "@.rendezvous blame:@.";
                print_blame
                  ~resolve:(fun pc -> Printf.sprintf "pc %d" pc)
                  events
              end;
              (match Causal.chains events with
              | [] -> ()
              | chains ->
                  Format.printf "@.commit chains:@.";
                  List.iter
                    (fun (c : Causal.chain) ->
                      Format.printf
                        "  cid %d: %s on hart %d, begin %.1f%s, %d defer(s), \
                         %d denial(s)%s%s@."
                        c.Causal.c_cid c.Causal.c_op c.Causal.c_hart
                        c.Causal.c_begin_ts
                        (match c.Causal.c_end_ts with
                        | Some e -> Printf.sprintf ", end %.1f" e
                        | None -> ", never ended")
                        (List.length c.Causal.c_defers)
                        (List.length c.Causal.c_denies)
                        (match c.Causal.c_drained with
                        | Some (h, ts) ->
                            Printf.sprintf ", drained on hart %d @ %.1f" h ts
                        | None -> "")
                        (if c.Causal.c_rolled_back then ", ROLLED BACK" else ""))
                    chains);
              match Causal.check_send_ack_pairing events with
              | [] -> ()
              | violations ->
                  Format.printf "@.causal invariant violations:@.";
                  List.iter (fun v -> Format.printf "  %s@." v) violations);
          0)

let postmortem_cmd =
  let doc = "Pretty-print and analyze a mv-flight/1 postmortem dump" in
  Cmd.v
    (Cmd.info "postmortem" ~doc)
    Term.(const postmortem_main $ dump_arg $ postmortem_limit_arg)

(* --- diff ----------------------------------------------------------- *)

let base_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"BASE" ~doc:"Baseline bench JSON")

let fresh_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"FRESH" ~doc:"Fresh bench JSON")

let gate_arg =
  Arg.(
    value & opt (some float) None
    & info [ "gate" ] ~docv:"PCT"
        ~doc:
          "Exit non-zero when any compared leaf drifts by more than $(docv) percent \
           (either direction: on a deterministic simulator any drift means the \
           baseline is stale)")

let all_arg =
  Arg.(
    value & flag
    & info [ "all" ] ~doc:"Show unchanged leaves too, not just the drifted ones")

let no_skip_arg =
  Arg.(
    value & flag
    & info [ "no-skip" ]
        ~doc:
          "Compare host wall-clock series too (commit_ms/revert_ms fields and the \
           host-ms row are skipped by default: they are not simulator-deterministic)")

let diff_json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write the delta list as JSON to $(docv)")

let diff_main base fresh gate all no_skip json_out =
  handle_errors (fun () ->
      let parse path =
        match Mv_obs.Json.parse (read_file path) with
        | Ok j -> Ok j
        | Error m -> Error (Printf.sprintf "%s: %s" path m)
      in
      match (parse base, parse fresh) with
      | Error m, _ | _, Error m ->
          Format.eprintf "error: %s@." m;
          2
      | Ok base_j, Ok fresh_j -> (
          let skip =
            if no_skip then Some (fun ~label:_ ~field:_ -> false) else None
          in
          match Mv_obs.Analyze.bench_diff ?skip ~base:base_j ~fresh:fresh_j () with
          | Error m ->
              Format.eprintf "error: %s@." m;
              2
          | Ok deltas ->
              Format.printf "%a@."
                (Mv_obs.Analyze.pp_deltas ~only_changed:(not all))
                deltas;
              (match json_out with
              | Some path ->
                  write_file path
                    (Mv_obs.Json.to_string_pretty (Mv_obs.Analyze.deltas_json deltas))
              | None -> ());
              (match gate with
              | None -> 0
              | Some threshold -> (
                  match Mv_obs.Analyze.regressions ~threshold deltas with
                  | [] ->
                      Format.printf "gate: ok (no leaf beyond %.2f%%)@." threshold;
                      0
                  | bad ->
                      Format.printf "gate: FAIL — %d leaf(s) beyond %.2f%%:@."
                        (List.length bad) threshold;
                      List.iter
                        (fun d -> Format.printf "  %a@." Mv_obs.Analyze.pp_delta d)
                        bad;
                      (* postmortem artifact for CI: the offending deltas
                         in the same schema every other failure dump
                         uses (gated on MV_SMP_ARTIFACT_DIR) *)
                      let flight =
                        Flight.create ~capacity:1 ~clock:(fun () -> 0.0) ()
                      in
                      (match
                         Flight.write_artifact flight ~reason:"bench-gate"
                           ~name:"bench-gate"
                           ~extra:
                             [
                               ("threshold", Json.Float threshold);
                               ( "regressions",
                                 Mv_obs.Analyze.deltas_json bad );
                             ]
                           ()
                       with
                      | Some p -> Format.eprintf "flight dump saved: %s@." p
                      | None -> ());
                      1))))

let diff_cmd =
  let doc = "Structurally compare two bench JSON documents" in
  Cmd.v
    (Cmd.info "diff" ~doc)
    Term.(
      const diff_main $ base_arg $ fresh_arg $ gate_arg $ all_arg $ no_skip_arg
      $ diff_json_arg)

(* ------------------------------------------------------------------ *)

let subcommands =
  [
    flame_cmd;
    top_cmd;
    spans_cmd;
    heat_cmd;
    variants_cmd;
    timeline_cmd;
    blame_cmd;
    postmortem_cmd;
    diff_cmd;
  ]

let cmd =
  let doc = "Observability analysis for multiverse workloads" in
  Cmd.group (Cmd.info "mvtrace" ~doc) subcommands

(* An unknown subcommand or flag must exit 2 (usage error) rather than
   cmdliner's default 124, and the message must name every subcommand so
   the caller can self-correct without opening the man page. *)
let () =
  let status = Cmd.eval' cmd in
  if status = Cmd.Exit.cli_error then begin
    Format.eprintf "usage: mvtrace COMMAND [OPTION]...@.commands: %s@."
      (String.concat ", " (List.map Cmd.name subcommands));
    exit 2
  end
  else exit status
