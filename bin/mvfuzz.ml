(* mvfuzz — differential fuzzer for the multiverse pipeline.

   Generates random Mini-C programs covering the whole language surface,
   runs them through every oracle pairing (reference interpreter vs VM,
   -O0 vs optimized, generic vs committed, randomized patching schedules
   with mid-run safe commits), and on divergence shrinks the case to a
   small reproducer.

     mvfuzz --iters 2000 --seed 1
     mvfuzz --iters 2000 --seed 1 --domains 4       # same corpus, 4 cores
     mvfuzz --seed 137 --replay
     mvfuzz --iters 500 --corpus fuzz-corpus
     mvfuzz --check-corpus fuzz-corpus
     mvfuzz --iters 50 --chaos skip-flush --corpus /tmp/chaos   # must diverge
     mvfuzz --iters 5 --chaos drop-ack --oracle smp-schedule-equiv  # must diverge

   Exit codes: 0 clean, 1 divergence found, 2 usage error (including
   unknown flags), 125 internal error. *)

module Driver = Mv_fuzz.Driver
module Oracle = Mv_fuzz.Oracle

open Cmdliner

let iters_arg =
  Arg.(value & opt int 200 & info [ "iters" ] ~docv:"N" ~doc:"Number of cases to fuzz")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:"Base seed; case $(i,i) uses seed N+i, so any failure names its seed")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Fan the campaign out over $(docv) OCaml domains.  Case $(i,i) \
           still runs under seed N+i (domain $(i,d) owns the stripe \
           $(i,d), $(i,d)+D, ...), so the tested seed set — and, with \
           $(b,--keep-going), the saved corpus — is byte-for-byte \
           identical to a single-domain run with the same budget; only \
           wall-clock changes.  Fuzzing mode only")

let replay_arg =
  Arg.(
    value & flag
    & info [ "replay" ]
        ~doc:"Replay a single seed verbosely: print the program, the schedule, and \
              every oracle verdict")

let corpus_arg =
  Arg.(
    value & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR" ~doc:"Save shrunk reproducers to $(docv)")

let check_corpus_arg =
  Arg.(
    value & opt (some string) None
    & info [ "check-corpus" ] ~docv:"DIR"
        ~doc:"Re-run every stored reproducer in $(docv) instead of fuzzing")

let chaos_arg =
  let chaos_conv =
    Arg.enum
      [
        ("none", Oracle.No_chaos);
        ("skip-flush", Oracle.Skip_flush);
        ("lost-flush", Oracle.Lost_flush);
        ("drop-ack", Oracle.Drop_ack);
        ("corrupt-framemap", Oracle.Corrupt_framemap);
        ("stale-cache", Oracle.Stale_cache);
      ]
  in
  Arg.(
    value & opt chaos_conv Oracle.No_chaos
    & info [ "chaos" ] ~docv:"MODE"
        ~doc:
          "Inject a fault into the patching machinery \
           (none|skip-flush|lost-flush|drop-ack|corrupt-framemap|stale-cache); see \
           $(b,CHAOS MODES).  Used to validate that the oracles catch \
           real patching bugs")

let oracle_arg =
  Arg.(
    value & opt_all string []
    & info [ "oracle" ] ~docv:"NAME"
        ~doc:"Restrict to the named oracle(s); repeatable.  Known: interp-vs-vm, \
              opt-vs-unopt, commit-soundness, commit-idempotent, schedule-equiv, \
              osr-state-equiv, smp-schedule-equiv")

let small_arg =
  Arg.(value & flag & info [ "small" ] ~doc:"Generate smaller programs (quick smokes)")

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "keep-going" ] ~doc:"Continue fuzzing after a divergence (collect all)")

let shrink_budget_arg =
  Arg.(
    value & opt int 300
    & info [ "shrink-budget" ] ~docv:"N" ~doc:"Max oracle evaluations while shrinking")

let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No progress output")

let emit_snippet (r : Driver.report) =
  Format.printf "@.--- shrunk reproducer (%d source lines) ---@."
    (List.length (String.split_on_char '\n' r.Driver.rp_entry.Mv_fuzz.Corpus.e_src));
  print_string r.Driver.rp_entry.Mv_fuzz.Corpus.e_src;
  Format.printf "@.--- ready-to-paste test case ---@.";
  print_string (Mv_fuzz.Corpus.ocaml_snippet r.Driver.rp_entry)

let main iters seed domains replay corpus check_corpus chaos only small
    keep_going shrink_budget quiet =
  let log = if quiet then ignore else print_endline in
  let cfg = if small then Mv_fuzz.Gen.small_cfg else Mv_fuzz.Gen.default_cfg in
  let bad_oracles = List.filter (fun o -> not (List.mem o Oracle.oracle_names)) only in
  if bad_oracles <> [] then begin
    Format.eprintf "mvfuzz: unknown oracle(s): %s (known: %s)@."
      (String.concat ", " bad_oracles)
      (String.concat ", " Oracle.oracle_names);
    2
  end
  else if domains < 1 then begin
    Format.eprintf "mvfuzz: --domains must be >= 1 (got %d)@." domains;
    2
  end
  else if domains > 1 && (replay || check_corpus <> None) then begin
    Format.eprintf
      "mvfuzz: --domains only applies to fuzzing mode (not --replay / \
       --check-corpus)@.";
    2
  end
  else
    try
      let summary =
        match check_corpus with
        | Some dir -> Driver.check_corpus ~chaos ~log ~dir ()
        | None ->
            if replay then Driver.replay ~cfg ~chaos ~only ~log ~seed ()
            else
              Driver.run_parallel ~cfg ~chaos ~only ?corpus_dir:corpus
                ~keep_going ~shrink_budget ~log ~domains ~seed ~iters ()
      in
      match summary.Driver.s_reports with
      | [] ->
          if not quiet then
            Format.printf "mvfuzz: %d case(s), no divergence@." summary.Driver.s_tested;
          0
      | reports ->
          List.iter emit_snippet reports;
          Format.printf "mvfuzz: %d divergence(s) in %d case(s)@."
            (List.length reports) summary.Driver.s_tested;
          1
    with
    | Failure m ->
        Format.eprintf "mvfuzz: %s@." m;
        2
    | exn ->
        Format.eprintf "mvfuzz: uncaught %s@." (Printexc.to_string exn);
        2

let cmd =
  let doc = "Differential fuzzer for the multiverse compiler and runtime" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "$(tname) generates random Mini-C programs over the full language \
         surface and checks every build/patching pairing for divergence.  \
         It has three modes, selected by flags (there are no positional \
         arguments; any unknown flag or stray argument is a usage error \
         and exits 2):";
      `I
        ( "$(b,fuzz) (default)",
          "Run $(b,--iters) cases starting at $(b,--seed); case $(i,i) \
           uses seed N+i.  $(b,--domains) parallelizes the campaign \
           without changing the tested seed set.  On divergence the case \
           is shrunk, printed as a ready-to-paste test, optionally saved \
           to $(b,--corpus), and the exit code is 1." );
      `I
        ( "$(b,--replay)",
          "Re-run a single seed verbosely: print the generated program, \
           the switch assignments, the patching schedule, and every \
           oracle verdict." );
      `I
        ( "$(b,--check-corpus) $(i,DIR)",
          "Re-run every stored reproducer in $(i,DIR); a reproducer \
           passes when its oracle no longer diverges (the bug stays \
           fixed)." );
      `S "ORACLES";
      `P
        "Each oracle compares two executions that must agree.  \
         $(b,interp-vs-vm): reference IR interpreter vs the machine \
         simulator.  $(b,opt-vs-unopt): -O0 vs optimized build.  \
         $(b,commit-soundness): generic vs committed multiverse code \
         under every reachable switch assignment.  \
         $(b,commit-idempotent): repeated commit/revert cycles leave \
         behavior and text bytes unchanged.  $(b,schedule-equiv): a \
         randomized patching schedule with mid-run safe commits vs the \
         unpatched baseline.  $(b,osr-state-equiv): an activation parked \
         inside a non-returning multiversed loop and moved into the \
         committed variant by on-stack replacement vs the same program \
         run from scratch in the committed world — return value, \
         observable globals, and the loop's progress counter must all \
         match.  $(b,smp-schedule-equiv): the same program \
         on a multi-hart container with cross-modifying-code patching \
         (stop_machine + text_poke) vs single-hart execution.";
      `S "CHAOS MODES";
      `P
        "$(b,--chaos) injects a known bug into the patching machinery to \
         prove the oracles have teeth; chaos runs are expected to exit 1.  \
         $(b,none): no fault (default).  $(b,skip-flush): the runtime \
         skips the icache flush after patching, so stale pre-decoded \
         instructions keep executing.  $(b,lost-flush): flushes are \
         dropped at the machine boundary (the flush request never reaches \
         the decode cache).  $(b,drop-ack): severs one hart's IPI channel \
         in the multi-hart oracle — it is never posted a stop request and \
         text flushes skip its icache (pair with \
         $(b,--oracle smp-schedule-equiv)).  $(b,corrupt-framemap): bumps \
         one live-entry location per safepoint in the OSR frame map, so \
         the on-stack transfer rebuilds the parked frame from the wrong \
         register or spill slot (pair with \
         $(b,--oracle osr-state-equiv)).";
      `S Manpage.s_exit_status;
      `P
        "0 on a clean run; 1 when a divergence was found (or, with \
         $(b,--check-corpus), a stored reproducer still diverges); 2 on \
         usage errors, including unknown flags and unknown oracle names; \
         125 on internal errors.";
    ]
  in
  Cmd.v
    (Cmd.info "mvfuzz" ~doc ~man
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"on a clean run.";
           Cmd.Exit.info 1 ~doc:"when a divergence was found.";
           Cmd.Exit.info 2 ~doc:"on usage errors (unknown flags, bad values).";
           Cmd.Exit.info 125 ~doc:"on internal errors.";
         ])
    Term.(
      const main $ iters_arg $ seed_arg $ domains_arg $ replay_arg $ corpus_arg
      $ check_corpus_arg $ chaos_arg $ oracle_arg $ small_arg $ keep_going_arg
      $ shrink_budget_arg $ quiet_arg)

(* ~term_err:2 maps cmdliner's CLI-parse failures (unknown flags, stray
   positional arguments, malformed values) onto the documented usage-error
   exit code instead of the cmdliner default 124. *)
let () = exit (Cmd.eval' ~term_err:2 cmd)
