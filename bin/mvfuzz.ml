(* mvfuzz — differential fuzzer for the multiverse pipeline.

   Generates random Mini-C programs covering the whole language surface,
   runs them through every oracle pairing (reference interpreter vs VM,
   -O0 vs optimized, generic vs committed, randomized patching schedules
   with mid-run safe commits), and on divergence shrinks the case to a
   small reproducer.

     mvfuzz --iters 2000 --seed 1
     mvfuzz --seed 137 --replay
     mvfuzz --iters 500 --corpus fuzz-corpus
     mvfuzz --check-corpus fuzz-corpus
     mvfuzz --iters 50 --chaos skip-flush --corpus /tmp/chaos   # must diverge
     mvfuzz --iters 5 --chaos drop-ack --oracle smp-schedule-equiv  # must diverge

   Exit codes: 0 clean, 1 divergence found, 2 usage/internal error. *)

module Driver = Mv_fuzz.Driver
module Oracle = Mv_fuzz.Oracle

open Cmdliner

let iters_arg =
  Arg.(value & opt int 200 & info [ "iters" ] ~docv:"N" ~doc:"Number of cases to fuzz")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:"Base seed; case $(i,i) uses seed N+i, so any failure names its seed")

let replay_arg =
  Arg.(
    value & flag
    & info [ "replay" ]
        ~doc:"Replay a single seed verbosely: print the program, the schedule, and \
              every oracle verdict")

let corpus_arg =
  Arg.(
    value & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR" ~doc:"Save shrunk reproducers to $(docv)")

let check_corpus_arg =
  Arg.(
    value & opt (some string) None
    & info [ "check-corpus" ] ~docv:"DIR"
        ~doc:"Re-run every stored reproducer in $(docv) instead of fuzzing")

let chaos_arg =
  let chaos_conv =
    Arg.enum
      [
        ("none", Oracle.No_chaos);
        ("skip-flush", Oracle.Skip_flush);
        ("lost-flush", Oracle.Lost_flush);
        ("drop-ack", Oracle.Drop_ack);
      ]
  in
  Arg.(
    value & opt chaos_conv Oracle.No_chaos
    & info [ "chaos" ] ~docv:"MODE"
        ~doc:
          "Inject a fault into the patching machinery \
           (none|skip-flush|lost-flush|drop-ack); skip/lost break the \
           icache-flush path, drop-ack severs one hart's IPI channel in \
           the multi-hart oracle.  Used to validate that the oracles \
           catch real patching bugs")

let oracle_arg =
  Arg.(
    value & opt_all string []
    & info [ "oracle" ] ~docv:"NAME"
        ~doc:"Restrict to the named oracle(s); repeatable.  Known: interp-vs-vm, \
              opt-vs-unopt, commit-soundness, commit-idempotent, schedule-equiv, \
              smp-schedule-equiv")

let small_arg =
  Arg.(value & flag & info [ "small" ] ~doc:"Generate smaller programs (quick smokes)")

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "keep-going" ] ~doc:"Continue fuzzing after a divergence (collect all)")

let shrink_budget_arg =
  Arg.(
    value & opt int 300
    & info [ "shrink-budget" ] ~docv:"N" ~doc:"Max oracle evaluations while shrinking")

let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No progress output")

let emit_snippet (r : Driver.report) =
  Format.printf "@.--- shrunk reproducer (%d source lines) ---@."
    (List.length (String.split_on_char '\n' r.Driver.rp_entry.Mv_fuzz.Corpus.e_src));
  print_string r.Driver.rp_entry.Mv_fuzz.Corpus.e_src;
  Format.printf "@.--- ready-to-paste test case ---@.";
  print_string (Mv_fuzz.Corpus.ocaml_snippet r.Driver.rp_entry)

let main iters seed replay corpus check_corpus chaos only small keep_going
    shrink_budget quiet =
  let log = if quiet then ignore else print_endline in
  let cfg = if small then Mv_fuzz.Gen.small_cfg else Mv_fuzz.Gen.default_cfg in
  let bad_oracles = List.filter (fun o -> not (List.mem o Oracle.oracle_names)) only in
  if bad_oracles <> [] then begin
    Format.eprintf "unknown oracle(s): %s (known: %s)@."
      (String.concat ", " bad_oracles)
      (String.concat ", " Oracle.oracle_names);
    2
  end
  else
    try
      let summary =
        match check_corpus with
        | Some dir -> Driver.check_corpus ~chaos ~log ~dir ()
        | None ->
            if replay then Driver.replay ~cfg ~chaos ~only ~log ~seed ()
            else
              Driver.run ~cfg ~chaos ~only ?corpus_dir:corpus ~keep_going
                ~shrink_budget ~log ~seed ~iters ()
      in
      match summary.Driver.s_reports with
      | [] ->
          if not quiet then
            Format.printf "mvfuzz: %d case(s), no divergence@." summary.Driver.s_tested;
          0
      | reports ->
          List.iter emit_snippet reports;
          Format.printf "mvfuzz: %d divergence(s) in %d case(s)@."
            (List.length reports) summary.Driver.s_tested;
          1
    with
    | Failure m ->
        Format.eprintf "mvfuzz: %s@." m;
        2
    | exn ->
        Format.eprintf "mvfuzz: uncaught %s@." (Printexc.to_string exn);
        2

let cmd =
  let doc = "Differential fuzzer for the multiverse compiler and runtime" in
  Cmd.v
    (Cmd.info "mvfuzz" ~doc)
    Term.(
      const main $ iters_arg $ seed_arg $ replay_arg $ corpus_arg
      $ check_corpus_arg $ chaos_arg $ oracle_arg $ small_arg $ keep_going_arg
      $ shrink_budget_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
