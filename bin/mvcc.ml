(* mvcc — the multiverse Mini-C compiler driver.

   Compiles one or more Mini-C source files, links them into a simulated
   process image, and optionally runs a function on the machine simulator,
   committing configuration switches through the multiverse runtime first.

     mvcc prog.mvc --run main
     mvcc prog.mvc --set config_smp=1 --commit --run bench --perf
     mvcc prog.mvc --dump-ir --dump-asm
     mvcc a.mvc b.mvc --descriptors --stats
     mvcc prog.mvc --commit --strategy body --run main
     mvcc prog.mvc --padding 8 --commit --bench bench_loop
     mvcc prog.mvc --commit --run main --trace out.json --stats-json m.json *)

module Image = Mv_link.Image

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let dump_ir (p : Core.Compiler.program) =
  List.iter
    (fun (u : Core.Compiler.compiled_unit) ->
      Format.printf "; unit %s@." u.cu_name;
      List.iter
        (fun fn -> Format.printf "%a@.@." Mv_ir.Ir.pp_fn fn)
        u.cu_prog.Mv_ir.Ir.p_fns)
    p.p_units

let dump_asm (p : Core.Compiler.program) =
  let img = p.p_image in
  List.iter
    (fun (u : Core.Compiler.compiled_unit) ->
      List.iter
        (fun (fn : Mv_ir.Ir.fn) ->
          let addr = Image.symbol img fn.fn_name in
          let size = Image.symbol_size img fn.fn_name in
          Format.printf "%s:  ; 0x%x, %d bytes@." fn.fn_name addr size;
          print_string
            (Mv_isa.Asm.disassemble
               ~resolve:(fun a -> Image.symbol_at img a)
               img.Image.mem ~off:addr ~len:size);
          print_newline ())
        u.cu_prog.Mv_ir.Ir.p_fns)
    p.p_units

let dump_descriptors (p : Core.Compiler.program) =
  let img = p.p_image in
  let vars = Core.Descriptor.parse_variables img in
  let fns = Core.Descriptor.parse_functions img in
  let sites = Core.Descriptor.parse_callsites img in
  Format.printf "multiverse.variables (%d):@." (List.length vars);
  List.iter
    (fun (v : Core.Descriptor.variable) ->
      Format.printf "  0x%-8x width=%d signed=%b fnptr=%b  ; %s@." v.vr_addr v.vr_width
        v.vr_signed v.vr_fnptr
        (Option.value ~default:"?" (Image.symbol_at img v.vr_addr)))
    vars;
  Format.printf "multiverse.functions (%d):@." (List.length fns);
  List.iter
    (fun (f : Core.Descriptor.function_record) ->
      Format.printf "  %s (0x%x, %d B), %d variant record(s):@."
        (Option.value ~default:"?" (Image.symbol_at img f.fd_generic))
        f.fd_generic f.fd_generic_size
        (List.length f.fd_variants);
      List.iter
        (fun (v : Core.Descriptor.variant_record) ->
          Format.printf "    %s (0x%x, %d B) guards:"
            (Option.value ~default:"?" (Image.symbol_at img v.va_addr))
            v.va_addr v.va_size;
          List.iter
            (fun (g : Core.Descriptor.guard_record) ->
              Format.printf " %s in [%d,%d]"
                (Option.value ~default:"?" (Image.symbol_at img g.gr_var))
                g.gr_lo g.gr_hi)
            v.va_guards;
          Format.printf "@.")
        f.fd_variants)
    fns;
  Format.printf "multiverse.callsites (%d):@." (List.length sites);
  List.iter
    (fun (c : Core.Descriptor.callsite) ->
      Format.printf "  site 0x%-8x -> %s@." c.cs_site
        (Option.value ~default:"?" (Image.symbol_at img c.cs_target)))
    sites

open Cmdliner

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"Mini-C source files")

let run_arg =
  Arg.(value & opt (some string) None & info [ "run" ] ~docv:"FN" ~doc:"Run function $(docv)")

let args_arg =
  Arg.(value & opt_all int [] & info [ "arg" ] ~docv:"N" ~doc:"Integer argument for --run")

let set_arg =
  Arg.(
    value & opt_all (pair ~sep:'=' string int) []
    & info [ "set" ] ~docv:"VAR=VAL" ~doc:"Set a global before running")

let commit_arg =
  Arg.(value & flag & info [ "commit" ] ~doc:"Call multiverse_commit before --run")

let perf_arg = Arg.(value & flag & info [ "perf" ] ~doc:"Print performance counters")
let dump_ir_arg = Arg.(value & flag & info [ "dump-ir" ] ~doc:"Dump the optimized IR")
let dump_asm_arg = Arg.(value & flag & info [ "dump-asm" ] ~doc:"Disassemble the image")

let descriptors_arg =
  Arg.(value & flag & info [ "descriptors" ] ~doc:"Dump multiverse descriptor sections")

let xen_arg =
  Arg.(value & flag & info [ "xen" ] ~doc:"Run as a paravirtualized guest (hypercalls allowed, cli/sti fault)")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print section sizes and multiverse overhead")

let strategy_arg =
  Arg.(
    value
    & opt (enum [ ("call-site", `Call_site); ("body", `Body) ]) `Call_site
    & info [ "strategy" ] ~docv:"S"
        ~doc:"Variant installation strategy: $(b,call-site) (the paper's design) or $(b,body) (the Section 7.1 alternative)")

let padding_arg =
  Arg.(
    value & opt int 0
    & info [ "padding" ] ~docv:"N"
        ~doc:"Nop-pad call sites of multiversed symbols by $(docv) bytes (wider inlining)")

let bench_arg =
  Arg.(
    value & opt (some string) None
    & info [ "bench" ] ~docv:"FN"
        ~doc:"Measure mean cycles per call of loop function $(docv) (called with a count argument)")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record patching/execution events and write a Chrome trace_event JSON to $(docv) (load in about:tracing or Perfetto)")

let stats_json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"Write the unified metrics snapshot (runtime, perf, program stats) as JSON to $(docv)")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:"Sample the step loop and print the hot-function table (variants attributed separately)")

let main files run args sets commit perf ir asm descriptors xen stats strategy padding bench
    trace stats_json profile =
  try
    let sources = List.map (fun f -> (Filename.basename f, read_file f)) files in
    let program = Core.Compiler.build ~callsite_padding:padding sources in
    List.iter (fun w -> Format.eprintf "%s@." w) (Core.Compiler.warnings program);
    if ir then dump_ir program;
    if descriptors then dump_descriptors program;
    let img = program.p_image in
    let machine =
      Mv_vm.Machine.create ~platform:(if xen then Mv_vm.Machine.Xen else Mv_vm.Machine.Native) img
    in
    let runtime =
      Core.Runtime.create img ~flush:(fun ~addr ~len ->
          Mv_vm.Machine.flush_icache machine ~addr ~len)
    in
    let session = Mv_workloads.Harness.of_parts program machine runtime in
    if trace <> None then Mv_workloads.Harness.enable_tracing session;
    if profile then Mv_workloads.Harness.enable_profiling session;
    (match strategy with
    | `Call_site -> ()
    | `Body -> Core.Runtime.set_strategy runtime Core.Runtime.Body_patching);
    List.iter
      (fun (name, v) -> Image.write img (Image.symbol img name) v 8)
      sets;
    if commit then begin
      let n = Core.Runtime.commit runtime in
      Format.printf "multiverse_commit: %d entities bound@." n;
      List.iter
        (fun f -> Format.printf "  fallback to generic: %s@." f)
        (Core.Runtime.fallbacks runtime)
    end;
    if asm then dump_asm program;
    if stats then begin
      Format.printf "%a@." Core.Stats.pp (Core.Stats.of_program program);
      let rstats = Core.Runtime.stats runtime in
      Format.printf
        "runtime: %d function(s), %d variant record(s), %d call site(s), %d inlined, %d retargeted@."
        rstats.Core.Runtime.st_functions rstats.Core.Runtime.st_variants
        rstats.Core.Runtime.st_callsites rstats.Core.Runtime.st_sites_inlined
        rstats.Core.Runtime.st_sites_retargeted
    end;
    (match bench with
    | Some loop_fn ->
        let calls = 100 in
        (* warmup + measure, mirroring the benchmark harness *)
        for _ = 1 to 3 do
          ignore (Mv_vm.Machine.call machine loop_fn [ calls ])
        done;
        let total = ref 0.0 in
        let samples = 100 in
        for _ = 1 to samples do
          let before = machine.Mv_vm.Machine.perf.Mv_vm.Perf.cycles in
          ignore (Mv_vm.Machine.call machine loop_fn [ calls ]);
          total := !total +. (machine.Mv_vm.Machine.perf.Mv_vm.Perf.cycles -. before)
        done;
        Format.printf "%s: %.2f cycles/call (%d samples x %d calls)@." loop_fn
          (!total /. float_of_int (samples * calls))
          samples calls
    | None -> ());
    (match run with
    | Some fn ->
        let before = Mv_vm.Perf.snapshot machine.Mv_vm.Machine.perf in
        let result = Mv_vm.Machine.call machine fn args in
        let after = Mv_vm.Perf.snapshot machine.Mv_vm.Machine.perf in
        Format.printf "%s(%s) = %d@." fn
          (String.concat ", " (List.map string_of_int args))
          result;
        if perf then Format.printf "%a@." Mv_vm.Perf.pp (Mv_vm.Perf.diff before after)
    | None -> ());
    if profile then
      Option.iter
        (fun p -> Format.printf "%a@." (fun fmt -> Mv_obs.Profile.pp fmt) p)
        session.Mv_workloads.Harness.profile;
    (match trace with
    | Some path ->
        write_file path (Mv_workloads.Harness.trace_dump session);
        Format.printf "trace: %d event(s) -> %s@."
          (List.length (Mv_workloads.Harness.trace_events session))
          path
    | None -> ());
    (match stats_json with
    | Some path ->
        write_file path
          (Mv_obs.Json.to_string_pretty (Mv_workloads.Harness.metrics_json session));
        Format.printf "metrics -> %s@." path
    | None -> ());
    0
  with
  | Core.Compiler.Compile_error m ->
      Format.eprintf "error: %s@." m;
      1
  | Mv_vm.Machine.Fault m ->
      Format.eprintf "machine fault: %s@." m;
      2
  | Image.Segfault m ->
      Format.eprintf "segfault: %s@." m;
      2

let cmd =
  let doc = "Mini-C compiler with multiverse dynamic-variability support" in
  Cmd.v
    (Cmd.info "mvcc" ~doc)
    Term.(
      const main $ files_arg $ run_arg $ args_arg $ set_arg $ commit_arg $ perf_arg
      $ dump_ir_arg $ dump_asm_arg $ descriptors_arg $ xen_arg $ stats_arg
      $ strategy_arg $ padding_arg $ bench_arg $ trace_arg $ stats_json_arg
      $ profile_arg)

let () = exit (Cmd.eval' cmd)
