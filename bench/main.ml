(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6), plus the ablations called out in DESIGN.md.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --only fig1  # one experiment
     dune exec bench/main.exe -- --list       # list experiment ids
     dune exec bench/main.exe -- --fast       # fewer samples
     dune exec bench/main.exe -- --no-bechamel

   Cycle numbers come from the deterministic machine simulator; wall-clock
   numbers (patch time, Bechamel suites) are measured on the host.  The
   EXPERIMENTS.md file records these outputs against the paper's values. *)

module H = Mv_workloads.Harness
module Spinlock = Mv_workloads.Spinlock
module Pvops = Mv_workloads.Pvops
module Musl = Mv_workloads.Musl
module Grep = Mv_workloads.Grep
module Pygc = Mv_workloads.Pygc
module Farm = Mv_workloads.Callsite_farm
module Machine = Mv_vm.Machine
module Json = Mv_obs.Json

let fast = ref false
let samples () = if !fast then 40 else 150

let header title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let row fmt = Printf.printf fmt

(* --json collector: experiments append labelled rows under the id the
   driver is currently running; at exit the tables are written as one
   mv-bench-rows/1 document (schema documented in EXPERIMENTS.md).
   --baseline needs the same rows, so either flag arms the collector. *)
let json_path : string option ref = ref None
let baseline_path : string option ref = ref None
let current_exp = ref ""
let json_tables : (string * Json.t list ref) list ref = ref []

let jrow label (fields : (string * Json.t) list) =
  if !json_path <> None || !baseline_path <> None then begin
    let tbl =
      match List.assoc_opt !current_exp !json_tables with
      | Some t -> t
      | None ->
          let t = ref [] in
          json_tables := !json_tables @ [ (!current_exp, t) ];
          t
    in
    tbl := Json.Obj (("label", Json.String label) :: fields) :: !tbl
  end

(* Row whose fields are full measurements (mean/stddev/percentiles). *)
let jmeas label pairs =
  jrow label (List.map (fun (k, m) -> (k, H.measurement_json m)) pairs)

let tables_doc () =
  Json.Obj
    [
      ("schema", Json.String "mv-bench-rows/1");
      ("fast", Json.Bool !fast);
      ( "experiments",
        Json.Obj
          (List.map (fun (id, rows) -> (id, Json.List (List.rev !rows))) !json_tables) );
    ]

let write_json_tables path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string_pretty (tables_doc ())));
  Printf.printf "results -> %s\n" path

(* --baseline: structural diff of this run's rows against a committed
   mv-bench-rows/1 document (same comparison mvtrace diff performs). *)
let print_baseline_diff path =
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse contents with
  | Error m -> Printf.eprintf "baseline %s: %s\n" path m
  | Ok base -> (
      match Mv_obs.Analyze.bench_diff ~base ~fresh:(tables_doc ()) () with
      | Error m -> Printf.eprintf "baseline diff: %s\n" m
      | Ok deltas ->
          header (Printf.sprintf "diff vs baseline %s" path);
          Format.printf "%a@." (Mv_obs.Analyze.pp_deltas ~only_changed:true) deltas)

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 — static vs dynamic vs multiverse spinlock             *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  header
    "E1 / Figure 1: spinlock lock+unlock, avg cycles\n\
     (paper: SMP=false: A=6.64 B=9.75 C=7.48; SMP=true: ~28.8 all)";
  row "%-12s %14s %15s %14s\n" "[avg cycles]" "A (static)" "B (dynamic if)" "C (multiverse)";
  List.iter
    (fun (label, a, b, c) ->
      row "%-12s %14.2f %15.2f %14.2f\n" label a.H.m_mean b.H.m_mean c.H.m_mean;
      jmeas label [ ("static", a); ("dynamic_if", b); ("multiverse", c) ])
    (Spinlock.figure1 ~samples:(samples ()) ())

(* ------------------------------------------------------------------ *)
(* E2: Figure 4 left — four kernels, unicore vs multicore              *)
(* ------------------------------------------------------------------ *)

let fig4_spinlock () =
  header
    "E2 / Figure 4 (left): spinlock (lock+unlock) across kernel builds\n\
     (paper shape: unicore ifdef < multiverse < if << mainline; multicore all ~equal)";
  row "%-28s %10s %12s\n" "kernel" "unicore" "multicore";
  List.iter
    (fun k ->
      let up = Spinlock.measure ~samples:(samples ()) k ~smp:false in
      match k with
      | Spinlock.Static_up ->
          row "%-28s %10.2f %12s\n" (Spinlock.kernel_name k) up.H.m_mean "n/a";
          jmeas (Spinlock.kernel_name k) [ ("unicore", up) ]
      | _ ->
          let smp = Spinlock.measure ~samples:(samples ()) k ~smp:true in
          row "%-28s %10.2f %12.2f\n" (Spinlock.kernel_name k) up.H.m_mean smp.H.m_mean;
          jmeas (Spinlock.kernel_name k) [ ("unicore", up); ("multicore", smp) ])
    [ Spinlock.Mainline_smp; Spinlock.If_elision; Spinlock.Multiverse; Spinlock.Static_up ]

(* ------------------------------------------------------------------ *)
(* E3: Figure 4 right — PV-Ops sti+cli                                 *)
(* ------------------------------------------------------------------ *)

let fig4_pvops () =
  header
    "E3 / Figure 4 (right): paravirtual operations (cli+sti), avg cycles\n\
     (paper shape: native all ~equal; Xen guest: multiverse < current)";
  row "%-30s %10s %12s\n" "kernel" "native" "XEN (guest)";
  List.iter
    (fun c ->
      let native = Pvops.measure ~samples:(samples ()) c ~platform:Machine.Native in
      match c with
      | Pvops.Static_native ->
          row "%-30s %10.2f %12s\n" (Pvops.config_name c) native.H.m_mean "n/a";
          jmeas (Pvops.config_name c) [ ("native", native) ]
      | Pvops.Current | Pvops.Multiverse ->
          let xen = Pvops.measure ~samples:(samples ()) c ~platform:Machine.Xen in
          row "%-30s %10.2f %12.2f\n" (Pvops.config_name c) native.H.m_mean xen.H.m_mean;
          jmeas (Pvops.config_name c) [ ("native", native); ("xen", xen) ])
    [ Pvops.Current; Pvops.Multiverse; Pvops.Static_native ]

(* ------------------------------------------------------------------ *)
(* E4: patch cost (Section 6.1 scalars)                                *)
(* ------------------------------------------------------------------ *)

let patch_cost () =
  header
    "E4 / Section 6.1 scalars: patching 1161 spinlock call sites\n\
     (paper: 1161 call sites, ~16 ms patch time, +40 KiB image)";
  let r = Farm.run ~sites:1161 () in
  row "call sites recorded      %d\n" r.Farm.r_callsites;
  row "commit wall-clock        %.2f ms\n" r.Farm.r_commit_ms;
  row "revert wall-clock        %.2f ms\n" r.Farm.r_revert_ms;
  row "individual patches       %d\n" r.Farm.r_patches;
  row "bytes patched            %d\n" r.Farm.r_bytes_patched;
  row "descriptor overhead      %d B\n" r.Farm.r_descriptor_bytes;
  row "variant text             %d B\n" r.Farm.r_variant_text_bytes;
  row "total multiverse bytes   %d B (paper: ~40 KiB for the whole kernel)\n"
    (r.Farm.r_descriptor_bytes + r.Farm.r_variant_text_bytes);
  jrow "farm-1161"
    [
      ("callsites", Json.Int r.Farm.r_callsites);
      ("commit_ms", Json.Float r.Farm.r_commit_ms);
      ("revert_ms", Json.Float r.Farm.r_revert_ms);
      ("patches", Json.Int r.Farm.r_patches);
      ("bytes_patched", Json.Int r.Farm.r_bytes_patched);
      ("descriptor_bytes", Json.Int r.Farm.r_descriptor_bytes);
      ("variant_text_bytes", Json.Int r.Farm.r_variant_text_bytes);
    ]

(* ------------------------------------------------------------------ *)
(* E4b: patch-cost scaling (call sites vs commit time)                  *)
(* ------------------------------------------------------------------ *)

let patch_scaling () =
  header
    "E4b / scaling: commit wall-clock vs number of recorded call sites\n\
     (the paper argues patch speed is not crucial, Section 7.1 — the cost\n\
    \ should scale linearly in the call sites)";
  row "%-12s %14s %14s %16s\n" "call sites" "commit (ms)" "revert (ms)" "bytes patched";
  List.iter
    (fun sites ->
      let r = Farm.run ~sites () in
      row "%-12d %14.3f %14.3f %16d\n" r.Farm.r_callsites r.Farm.r_commit_ms
        r.Farm.r_revert_ms r.Farm.r_bytes_patched;
      jrow (string_of_int sites)
        [
          ("callsites", Json.Int r.Farm.r_callsites);
          ("commit_ms", Json.Float r.Farm.r_commit_ms);
          ("revert_ms", Json.Float r.Farm.r_revert_ms);
          ("bytes_patched", Json.Int r.Farm.r_bytes_patched);
        ])
    [ 100; 400; 1600; 6400 ]

(* ------------------------------------------------------------------ *)
(* E5: Figure 5 — musl                                                  *)
(* ------------------------------------------------------------------ *)

let fig5_musl () =
  header
    "E5 / Figure 5: musl, accumulated ms for 10M invocations\n\
     (paper single-threaded deltas: random -43%, malloc(0) -51%, malloc(1) -54%, fputc -53%;\n\
    \ multi-threaded: no significant change)";
  List.iter
    (fun threads ->
      row "\n-- %s --\n" (if threads = 0 then "single-threaded" else "multi-threaded");
      row "%-12s %16s %16s %8s\n" "function" "w/o multiverse" "w/ multiverse" "delta";
      List.iter
        (fun bench ->
          let plain = Musl.measure ~samples:(samples ()) Musl.Plain bench ~threads in
          let mv = Musl.measure ~samples:(samples ()) Musl.Multiversed bench ~threads in
          let p_ms = Musl.to_ms_for plain ~invocations:10_000_000 in
          let m_ms = Musl.to_ms_for mv ~invocations:10_000_000 in
          row "%-12s %13.1f ms %13.1f ms %+7.1f%%\n" (Musl.bench_name bench) p_ms m_ms
            ((m_ms -. p_ms) /. p_ms *. 100.0);
          jrow
            (Printf.sprintf "%s/threads=%d" (Musl.bench_name bench) threads)
            [ ("plain_ms", Json.Float p_ms); ("multiverse_ms", Json.Float m_ms) ])
        Musl.all_benches)
    [ 0; 1 ]

(* ------------------------------------------------------------------ *)
(* E6: musl scalars — fputc bandwidth and branch reduction             *)
(* ------------------------------------------------------------------ *)

let musl_scalars () =
  header
    "E6 / Section 6.2.2 scalars\n\
     (paper: fputc bandwidth 124 -> 264 MiB/s; branches -40% for malloc(1))";
  let plain_fputc = Musl.measure ~samples:(samples ()) Musl.Plain Musl.Fputc ~threads:0 in
  let mv_fputc = Musl.measure ~samples:(samples ()) Musl.Multiversed Musl.Fputc ~threads:0 in
  row "fputc bandwidth w/o multiverse  %8.0f MiB/s\n" (Musl.fputc_bandwidth plain_fputc);
  row "fputc bandwidth w/  multiverse  %8.0f MiB/s\n" (Musl.fputc_bandwidth mv_fputc);
  let bp = Musl.branches_per_call Musl.Plain Musl.Malloc1 ~threads:0 in
  let bm = Musl.branches_per_call Musl.Multiversed Musl.Malloc1 ~threads:0 in
  row "branches/call malloc(1) w/o multiverse  %6.2f\n" bp;
  row "branches/call malloc(1) w/  multiverse  %6.2f (%+.0f%%)\n" bm
    ((bm -. bp) /. bp *. 100.0);
  jrow "fputc-bandwidth"
    [
      ("plain_mib_s", Json.Float (Musl.fputc_bandwidth plain_fputc));
      ("multiverse_mib_s", Json.Float (Musl.fputc_bandwidth mv_fputc));
    ];
  jrow "malloc1-branches"
    [ ("plain", Json.Float bp); ("multiverse", Json.Float bm) ]

(* ------------------------------------------------------------------ *)
(* E7: grep                                                             *)
(* ------------------------------------------------------------------ *)

let grep () =
  header
    "E7 / Section 6.2.3: grep \"a.a\" over hexadecimal random text\n\
     (paper: 7.84 s -> 7.63 s for 2 GiB, -2.73%)";
  let rounds = if !fast then 8 else 25 in
  let plain = Grep.cycles_per_byte ~rounds Grep.Plain ~mb_mode:0 in
  let mv = Grep.cycles_per_byte ~rounds Grep.Multiversed ~mb_mode:0 in
  row "cycles/byte w/o multiverse   %.3f  (projected %.2f s / 2 GiB)\n" plain
    (Grep.seconds_for_2gib plain);
  row "cycles/byte w/  multiverse   %.3f  (projected %.2f s / 2 GiB)\n" mv
    (Grep.seconds_for_2gib mv);
  row "delta                        %+.2f%%\n" ((mv -. plain) /. plain *. 100.0);
  (* functional cross-check: the committed matcher must find the same matches *)
  let c_plain = Grep.scan_count Grep.Plain ~mb_mode:0 in
  let c_mv = Grep.scan_count Grep.Multiversed ~mb_mode:0 in
  row "match count (both builds)    %d / %d%s\n" c_plain c_mv
    (if c_plain = c_mv then "  [consistent]" else "  [MISMATCH]");
  jrow "a.a-hex"
    [
      ("plain_cycles_per_byte", Json.Float plain);
      ("multiverse_cycles_per_byte", Json.Float mv);
      ("matches_consistent", Json.Bool (c_plain = c_mv));
    ]

(* ------------------------------------------------------------------ *)
(* E8: cPython GC flag                                                  *)
(* ------------------------------------------------------------------ *)

let cpython () =
  header
    "E8 / Section 6.2.1: cPython _PyObject_GC_Alloc with gc disabled\n\
     (paper: no stable result on real hardware; deterministic model below)";
  let plain = Pygc.measure ~samples:(samples ()) Pygc.Plain ~gc_enabled:0 in
  let mv = Pygc.measure ~samples:(samples ()) Pygc.Multiversed ~gc_enabled:0 in
  row "alloc cycles, gc off, w/o multiverse  %7.2f\n" plain.H.m_mean;
  row "alloc cycles, gc off, w/  multiverse  %7.2f (%+.1f%%)\n" mv.H.m_mean
    ((mv.H.m_mean -. plain.H.m_mean) /. plain.H.m_mean *. 100.0);
  let on_plain = Pygc.measure ~samples:(samples ()) Pygc.Plain ~gc_enabled:1 in
  let on_mv = Pygc.measure ~samples:(samples ()) Pygc.Multiversed ~gc_enabled:1 in
  row "alloc cycles, gc on,  w/o multiverse  %7.2f\n" on_plain.H.m_mean;
  row "alloc cycles, gc on,  w/  multiverse  %7.2f (%+.1f%%)\n" on_mv.H.m_mean
    ((on_mv.H.m_mean -. on_plain.H.m_mean) /. on_plain.H.m_mean *. 100.0);
  row "caveat: the paper could not measure this stably on real hardware.\n";
  jmeas "gc-off" [ ("plain", plain); ("multiverse", mv) ];
  jmeas "gc-on" [ ("plain", on_plain); ("multiverse", on_mv) ]

(* ------------------------------------------------------------------ *)
(* E9: descriptor sizes (Section 5 scalars)                            *)
(* ------------------------------------------------------------------ *)

let descriptor_sizes () =
  header
    "E9 / Section 5: descriptor overhead\n\
     (paper: 32 B/switch, 16 B/call site, 48 + #v*(32 + #g*16) B/function)";
  let s = H.session1 (Spinlock.source Spinlock.Multiverse) in
  let stats = Core.Stats.of_program s.H.program in
  Format.printf "%a@." Core.Stats.pp stats;
  (* verify the formulas against the actual section bytes *)
  let img = s.H.program.Core.Compiler.p_image in
  let vars = Core.Descriptor.parse_variables img in
  let fns = Core.Descriptor.parse_functions img in
  let sites = Core.Descriptor.parse_callsites img in
  let expected_vars = 32 * List.length vars in
  let expected_sites = 16 * List.length sites in
  let expected_fns =
    List.fold_left
      (fun acc (f : Core.Descriptor.function_record) ->
        let guards =
          List.fold_left
            (fun acc (v : Core.Descriptor.variant_record) -> acc + List.length v.va_guards)
            0 f.fd_variants
        in
        acc
        + Core.Stats.function_record_bytes ~variants:(List.length f.fd_variants)
            ~total_guards:guards)
      0 fns
  in
  row "formula check: variables %d B, call sites %d B, functions %d B\n" expected_vars
    expected_sites expected_fns;
  row "actual:        variables %d B, call sites %d B, functions %d B%s\n"
    stats.Core.Stats.ps_sections.Core.Stats.sz_variables
    stats.Core.Stats.ps_sections.Core.Stats.sz_callsites
    stats.Core.Stats.ps_sections.Core.Stats.sz_functions
    (if
       expected_vars = stats.Core.Stats.ps_sections.Core.Stats.sz_variables
       && expected_sites = stats.Core.Stats.ps_sections.Core.Stats.sz_callsites
       && expected_fns = stats.Core.Stats.ps_sections.Core.Stats.sz_functions
     then "  [formulas hold]"
     else "  [MISMATCH]");
  jrow "spinlock-multiverse"
    [ ("program_stats", Core.Stats.program_stats_json stats) ]

(* ------------------------------------------------------------------ *)
(* E10: the Table 1 API                                                 *)
(* ------------------------------------------------------------------ *)

let api () =
  header "E10 / Table 1: the multiverse API, exercised end to end";
  let s = H.session1 (Spinlock.source Spinlock.Multiverse) in
  let r = s.H.runtime in
  H.set s "config_smp" 0;
  row "multiverse_commit()            -> %d bound\n" (Core.Runtime.commit r);
  row "multiverse_revert()            -> %d reverted\n" (Core.Runtime.revert r);
  row "multiverse_commit_func(lock)   -> %d\n" (Core.Runtime.commit_func r "spin_irq_lock");
  row "multiverse_revert_func(lock)   -> %d\n" (Core.Runtime.revert_func r "spin_irq_lock");
  row "multiverse_commit_refs(smp)    -> %d\n" (Core.Runtime.commit_refs r "config_smp");
  row "multiverse_revert_refs(smp)    -> %d\n" (Core.Runtime.revert_refs r "config_smp");
  row "fallbacks: [%s]\n" (String.concat "; " (Core.Runtime.fallbacks r))

(* ------------------------------------------------------------------ *)
(* E11: the Figures 2/3 worked example                                  *)
(* ------------------------------------------------------------------ *)

let worked_example () =
  header "E11 / Figures 2-3: the multi()/foo() worked example";
  let src =
    {|
    multiverse bool A;
    multiverse int B;
    int effects;
    void calc() { effects = effects + 1; }
    void log_() { effects = effects + 1000; }
    multiverse void multi() {
      if (A) {
        calc();
        if (B) { log_(); }
      }
    }
    int foo() { effects = 0; multi(); return effects; }
  |}
  in
  let s = H.session1 src in
  let img = s.H.program.Core.Compiler.p_image in
  let fns = Core.Descriptor.parse_functions img in
  let f = List.hd fns in
  row "variants generated for multi(): %d (4 assignments, A=0 bodies merged)\n"
    (List.length f.Core.Descriptor.fd_variants);
  List.iter
    (fun (v : Core.Descriptor.variant_record) ->
      row "  %-18s %3d bytes, guards:%s\n"
        (Option.value ~default:"?" (Mv_link.Image.symbol_at img v.va_addr))
        v.va_size
        (String.concat ""
           (List.map
              (fun (g : Core.Descriptor.guard_record) ->
                Printf.sprintf " %s in [%d,%d]"
                  (Option.value ~default:"?" (Mv_link.Image.symbol_at img g.gr_var))
                  g.gr_lo g.gr_hi)
              v.va_guards)))
    f.Core.Descriptor.fd_variants;
  List.iter
    (fun (a, b) ->
      H.set s "A" a;
      H.set s "B" b;
      let bound = H.commit s in
      row "A=%d B=%d: commit -> %d bound, foo() = %d%s\n" a b bound (H.call s "foo" [])
        (match Core.Runtime.fallbacks s.H.runtime with
        | [] -> ""
        | fs -> Printf.sprintf "  (fallback: %s)" (String.concat ", " fs)))
    [ (0, 0); (1, 0); (1, 1); (3, 4) ]

(* ------------------------------------------------------------------ *)
(* E12: extension — Ftrace-style zero-cost probes                       *)
(* ------------------------------------------------------------------ *)

let tracing () =
  header
    "E12 / extension: Ftrace-style function tracing via multiverse\n\
     (Section 1.1: multiverse unifies the kernel's ad-hoc patching\n\
    \ mechanisms; probes committed off become pure nops at every site)";
  let module T = Mv_workloads.Tracing in
  let off_dynamic = T.measure ~samples:(samples ()) T.Plain ~enabled:false in
  let off_committed = T.measure ~samples:(samples ()) T.Multiversed ~enabled:false in
  let on_committed = T.measure ~samples:(samples ()) T.Multiversed ~enabled:true in
  let baseline =
    (* the same functions with the probes removed at the source level *)
    let src =
      {|
      int file_size;
      int vfs_read(int n) { return n < file_size ? n : file_size; }
      int vfs_write(int n) { file_size = file_size + n; return n; }
      int sys_getpid() { return 42; }
      void bench_loop(int n) {
        for (int i = 0; i < n; i = i + 1) {
          vfs_write(8);
          vfs_read(4);
          sys_getpid();
        }
      }
    |}
    in
    H.measure ~samples:(samples ()) (H.session1 src) ~loop_fn:"bench_loop"
  in
  row "%-38s %10s\n" "configuration" "cycles";
  row "%-38s %10.2f\n" "no probes compiled in (baseline)" baseline.H.m_mean;
  row "%-38s %10.2f\n" "tracing off, dynamic check" off_dynamic.H.m_mean;
  row "%-38s %10.2f\n" "tracing off, multiverse (nop probes)" off_committed.H.m_mean;
  row "%-38s %10.2f\n" "tracing on, multiverse (recording)" on_committed.H.m_mean;
  row "=> committed-off probes cost %.2f cycles over no probes at all\n"
    (off_committed.H.m_mean -. baseline.H.m_mean);
  jmeas "probes"
    [
      ("baseline", baseline);
      ("off_dynamic", off_dynamic);
      ("off_multiverse", off_committed);
      ("on_multiverse", on_committed);
    ];
  let s = T.prepare T.Multiversed ~enabled:false in
  row "   (%d probe sites inlined as nops)\n" (T.nop_sites s);
  row "events recorded (on, 100 iterations): %d\n"
    (T.events_recorded T.Multiversed ~enabled:true ~calls:100)

(* ------------------------------------------------------------------ *)
(* E13: extension — safe commit (quiescence + deferred patching)        *)
(* ------------------------------------------------------------------ *)

let safe_commit_bench () =
  header
    "E13 / extension: safe commit — stack quiescence and deferred patching\n\
     (beyond the paper: Section 2's \"caller guarantees a patchable state\"\n\
    \ replaced by a live-activation check and a safepoint drain; the poll\n\
    \ is a per-ret flag test, budget < 2% on the spinlock workload)";
  let spin ~smp ~hook =
    let s = H.session1 (Spinlock.source Spinlock.Multiverse) in
    H.set s "config_smp" (Bool.to_int smp);
    ignore (H.commit s);
    if hook then H.enable_safe_commit s;
    H.measure ~samples:(samples ()) s ~loop_fn:"bench_loop"
  in
  row "%-40s %10s %10s %8s\n" "spinlock lock+unlock [avg cycles]" "w/o hook" "w/ hook"
    "delta";
  List.iter
    (fun (label, smp) ->
      let off = spin ~smp ~hook:false in
      let on = spin ~smp ~hook:true in
      let delta = (on.H.m_mean -. off.H.m_mean) /. off.H.m_mean *. 100.0 in
      row "%-40s %10.2f %10.2f %+7.2f%%\n" label off.H.m_mean on.H.m_mean delta;
      jmeas label [ ("without_hook", off); ("with_hook", on) ])
    [ ("unicore (elided, sites inlined)", false); ("multicore (atomic path)", true) ];
  (* deferral in action: commit while an activation of the target is live *)
  let src =
    {|
    multiverse bool m;
    int w;
    multiverse void f() { if (m) { w = w + 100; } }
    void spacer() { w = w + 1; }
    int driver() { w = 0; f(); spacer(); spacer(); f(); return w; }
  |}
  in
  let s = H.session1 src in
  H.enable_safe_commit s;
  H.set s "m" 1;
  let f_addr = Mv_link.Image.symbol s.H.program.Core.Compiler.p_image "f" in
  Machine.start_call s.H.machine "driver" [];
  while s.H.machine.Machine.pc <> f_addr do
    ignore (Machine.step s.H.machine)
  done;
  let bound = H.commit_safe s in
  row "\ncommit_safe with the target live: %d bound, pending: [%s]\n" bound
    (String.concat "; " (Core.Runtime.pending s.H.runtime));
  let w = Machine.finish s.H.machine in
  let st = Core.Runtime.stats s.H.runtime in
  row "run result %d (specialized mid-run at a quiescent safepoint)\n" w;
  row "deferred %d, applied %d, rolled back %d, safepoint polls %d\n"
    st.Core.Runtime.st_safe_deferred st.Core.Runtime.st_safe_applied
    st.Core.Runtime.st_safe_rolled_back st.Core.Runtime.st_safepoint_polls

(* ------------------------------------------------------------------ *)
(* E20: extension — on-stack replacement drain latency                  *)
(* ------------------------------------------------------------------ *)

(* A deferred set bound to an activation that never returns: without OSR
   the only drain opportunity is the frame unwinding, so drain latency
   grows with the loop length; with OSR the parked frame is transferred
   into the variant at the next safepoint and latency collapses to about
   one safepoint interval, independent of the remaining iterations. *)
let osr_drain () =
  header
    "E20 / extension: on-stack replacement — drain latency for\n\
     non-quiescent activations (frame transfer at the next safepoint;\n\
    \ gate: <= 2 safepoint intervals with OSR, any loop length)";
  let src =
    {|
    multiverse bool m;
    int w;
    void tick() { w = w + 1; }
    multiverse int spin(int n) {
      int acc = 0;
      int i = 0;
      while (i < n) {
        tick();
        if (m) { acc = acc + 2; } else { acc = acc + 1; }
        i = i + 1;
      }
      return acc;
    }
    int driver(int n) { return spin(n); }
  |}
  in
  let park s =
    let addr = Mv_link.Image.symbol s.H.program.Core.Compiler.p_image "spin" in
    while s.H.machine.Machine.pc <> addr do
      ignore (Machine.step s.H.machine)
    done
  in
  (* One safepoint interval in machine steps: park inside the loop and
     count the steps between two consecutive safepoint polls. *)
  let interval =
    let s = H.session1 src in
    H.enable_safe_commit s;
    H.set s "m" 1;
    Machine.start_call s.H.machine "driver" [ 1000 ];
    park s;
    let polls () = (Core.Runtime.stats s.H.runtime).Core.Runtime.st_safepoint_polls in
    let rec to_next_poll steps p0 =
      if polls () > p0 then steps
      else begin
        ignore (Machine.step s.H.machine);
        to_next_poll (steps + 1) p0
      end
    in
    ignore (to_next_poll 0 (polls ()));
    to_next_poll 0 (polls ())
  in
  row "safepoint interval inside the loop: %d steps\n\n" interval;
  row "%-10s %16s %14s %12s %10s %8s\n" "[steps]" "w/o OSR drain" "w/ OSR drain"
    "intervals" "transfers" "aborts";
  let drain ~osr ~iters =
    let s = H.session1 src in
    H.enable_safe_commit s;
    if osr then H.enable_osr s;
    H.set s "m" 1;
    Machine.start_call s.H.machine "driver" [ iters ];
    park s;
    ignore (H.commit_safe s);
    let steps = ref 0 in
    let running = ref true in
    while Core.Runtime.pending s.H.runtime <> [] && !running do
      incr steps;
      running := Machine.step s.H.machine
    done;
    let st = Core.Runtime.stats s.H.runtime in
    (!steps, st.Core.Runtime.st_osr_transfers, st.Core.Runtime.st_osr_aborts)
  in
  List.iter
    (fun iters ->
      let without, _, _ = drain ~osr:false ~iters in
      let with_osr, transfers, aborts = drain ~osr:true ~iters in
      let intervals = float_of_int with_osr /. float_of_int interval in
      row "n=%-8d %16d %14d %12.2f %10d %8d\n" iters without with_osr intervals
        transfers aborts;
      jrow
        (Printf.sprintf "n=%d" iters)
        [
          ("without_osr_steps", Json.Int without);
          ("with_osr_steps", Json.Int with_osr);
          ("safepoint_interval_steps", Json.Int interval);
          ("osr_intervals", Json.Float intervals);
          ("transfers", Json.Int transfers);
          ("aborts", Json.Int aborts);
        ];
      if intervals > 2.0 then
        row "!! OSR drain exceeded 2 safepoint intervals (%.2f)\n" intervals)
    [ 200; 1000; 5000 ];
  row "=> without OSR the drain waits for the frame to unwind (O(n));\n";
  row "   with OSR it is pinned to the next safepoint, independent of n\n"

(* ------------------------------------------------------------------ *)
(* A1: ablation — completeness jump vs patched direct call              *)
(* ------------------------------------------------------------------ *)

let ablation_jmp () =
  header
    "A1 / ablation: cost of reaching a variant through the generic\n\
     prologue jump (function pointers) vs a patched direct call site";
  let src =
    Spinlock.source Spinlock.Multiverse
    ^ {|
    fnptr lock_ptr = &spin_irq_lock;
    fnptr unlock_ptr = &spin_irq_unlock;
    void bench_ptr_loop(int n) {
      for (int i = 0; i < n; i = i + 1) {
        lock_ptr();
        unlock_ptr();
      }
    }
  |}
  in
  let s = H.session1 src in
  H.set s "config_smp" 0;
  ignore (H.commit s);
  let direct = H.measure ~samples:(samples ()) s ~loop_fn:"bench_loop" in
  let via_ptr = H.measure ~samples:(samples ()) s ~loop_fn:"bench_ptr_loop" in
  row "patched direct call sites      %7.2f cycles\n" direct.H.m_mean;
  row "via fn-pointer + prologue jmp  %7.2f cycles (the completeness path)\n"
    via_ptr.H.m_mean;
  row "=> call-site patching saves    %7.2f cycles per invocation pair\n"
    (via_ptr.H.m_mean -. direct.H.m_mean);
  jmeas "unicore" [ ("direct", direct); ("via_fnptr", via_ptr) ]

(* ------------------------------------------------------------------ *)
(* A2: ablation — branch predictor warm vs cold                         *)
(* ------------------------------------------------------------------ *)

let ablation_btb () =
  header
    "A2 / ablation: the dynamic-if kernel under branch-predictor pressure\n\
     (the paper's Section 1 argument: ~16-cycle misprediction on real paths)";
  let measure_with_pressure ?(perturb = false) kernel ~flush_every =
    let s = H.session1 (Spinlock.source kernel) in
    (match kernel with
    | Spinlock.If_elision -> H.set s "config_smp" 0
    | Spinlock.Multiverse ->
        H.set s "config_smp" 0;
        ignore (H.commit s)
    | Spinlock.Mainline_smp | Spinlock.Static_up -> ());
    (* warmup *)
    ignore (H.call s "bench_loop" [ 100 ]);
    let n = samples () in
    let total = ref 0.0 in
    for i = 1 to n do
      if flush_every > 0 && i mod flush_every = 0 then
        if perturb then
          Mv_vm.Branch_pred.perturb s.H.machine.Machine.bp ~seed:i ~fraction:0.5
        else Mv_vm.Branch_pred.flush s.H.machine.Machine.bp;
      total := !total +. (H.cycles_of_call s "bench_loop" [ 10 ] /. 10.0)
    done;
    !total /. float_of_int n
  in
  let if_warm = measure_with_pressure Spinlock.If_elision ~flush_every:0 in
  let if_aliased = measure_with_pressure ~perturb:true Spinlock.If_elision ~flush_every:1 in
  let if_cold = measure_with_pressure Spinlock.If_elision ~flush_every:1 in
  let mv_warm = measure_with_pressure Spinlock.Multiverse ~flush_every:0 in
  let mv_aliased = measure_with_pressure ~perturb:true Spinlock.Multiverse ~flush_every:1 in
  let mv_cold = measure_with_pressure Spinlock.Multiverse ~flush_every:1 in
  row "%-28s %10s %12s %12s\n" "unicore kernel" "warm BTB" "aliased BTB" "cold BTB";
  row "%-28s %10.2f %12.2f %12.2f\n" "lock elision [if]" if_warm if_aliased if_cold;
  row "%-28s %10.2f %12.2f %12.2f\n" "lock elision [multiverse]" mv_warm mv_aliased mv_cold;
  jrow "if"
    [
      ("warm", Json.Float if_warm);
      ("aliased", Json.Float if_aliased);
      ("cold", Json.Float if_cold);
    ];
  jrow "multiverse"
    [
      ("warm", Json.Float mv_warm);
      ("aliased", Json.Float mv_aliased);
      ("cold", Json.Float mv_cold);
    ];
  row
    "=> the dynamic branch is nearly free when predicted but pays extra cycles\n\
    \   when cold (delta %.2f); the multiversed kernel has no such branch.\n"
    (if_cold -. if_warm)

(* ------------------------------------------------------------------ *)
(* A3: ablation — call-site inlining disabled                           *)
(* ------------------------------------------------------------------ *)

let ablation_inline () =
  header
    "A3 / ablation: PV-Ops native with call-site inlining disabled\n\
     (what Figure 4 right would look like without the inliner)";
  let run ~inline =
    let s = H.session1 (Pvops.source Pvops.Multiverse) in
    Core.Runtime.set_inlining s.H.runtime inline;
    Pvops.boot s Pvops.Multiverse Machine.Native;
    (H.measure ~samples:(samples ()) s ~loop_fn:"bench_loop").H.m_mean
  in
  let with_inline = run ~inline:true in
  let without = run ~inline:false in
  row "native cli+sti, inlining on   %7.2f cycles\n" with_inline;
  row "native cli+sti, inlining off  %7.2f cycles (call overhead retained)\n" without;
  row "=> inlining contributes       %7.2f cycles per op pair\n" (without -. with_inline);
  jrow "pvops-native"
    [ ("inlining_on", Json.Float with_inline); ("inlining_off", Json.Float without) ]

(* ------------------------------------------------------------------ *)
(* A4: ablation — body patching vs call-site patching (Section 7.1)     *)
(* ------------------------------------------------------------------ *)

let ablation_body_patching () =
  header
    "A4 / ablation: body patching vs call-site patching (Section 7.1)\n\
     (the alternative the paper rejects: fewer patches, but the runtime\n\
    \ must relocate variant bodies and loses call-site inlining)";
  let farm_src = Farm.source ~callers:117 ~pairs:5 in
  let run strategy =
    let s = H.session1 farm_src in
    Core.Runtime.set_strategy s.H.runtime strategy;
    H.set s "config_smp" 1;
    let t0 = Unix.gettimeofday () in
    ignore (H.commit s);
    let t1 = Unix.gettimeofday () in
    let stats = Core.Runtime.stats s.H.runtime in
    (* also measure the spinlock cost under each strategy, in UP mode *)
    ignore (H.revert s);
    H.set s "config_smp" 0;
    ignore (H.commit s);
    let m = H.measure ~samples:(samples ()) s ~loop_fn:"run_all" in
    ((t1 -. t0) *. 1000.0, stats.Core.Runtime.st_patches, m.H.m_mean)
  in
  let cs_ms, cs_patches, cs_cycles = run Core.Runtime.Call_site_patching in
  let bp_ms, bp_patches, bp_cycles = run Core.Runtime.Body_patching in
  row "%-24s %12s %10s %18s\n" "strategy" "commit (ms)" "patches" "run_all (cycles)";
  row "%-24s %12.3f %10d %18.1f\n" "call-site patching" cs_ms cs_patches cs_cycles;
  row "%-24s %12.3f %10d %18.1f\n" "body patching" bp_ms bp_patches bp_cycles;
  jrow "call-site"
    [
      ("commit_ms", Json.Float cs_ms);
      ("patches", Json.Int cs_patches);
      ("cycles", Json.Float cs_cycles);
    ];
  jrow "body"
    [
      ("commit_ms", Json.Float bp_ms);
      ("patches", Json.Int bp_patches);
      ("cycles", Json.Float bp_cycles);
    ];
  row
    "=> body patching commits with ~%dx fewer patches but cannot inline\n\
    \   tiny bodies into call sites (execution %.1f%% slower here).\n"
    (cs_patches / max 1 bp_patches)
    ((bp_cycles -. cs_cycles) /. cs_cycles *. 100.0)

(* ------------------------------------------------------------------ *)
(* A5: ablation — padded call sites (wider inlining, Section 7.1)       *)
(* ------------------------------------------------------------------ *)

let ablation_padded_sites () =
  header
    "A5 / ablation: nop-padded call sites widen the inlining budget\n\
     (the \"adjusting the sizes of call sites\" extension of Section 7.1)";
  let src =
    {|
    multiverse int m;
    int w;
    multiverse void store_one() {
      if (m) {
        w = 1;
      }
    }
    void bench_loop(int n) {
      for (int i = 0; i < n; i = i + 1) {
        store_one();
      }
    }
  |}
  in
  let run padding =
    let program = Core.Compiler.build ~callsite_padding:padding [ ("m", src) ] in
    let machine = Mv_vm.Machine.create program.Core.Compiler.p_image in
    let runtime =
      Core.Runtime.create program.Core.Compiler.p_image ~flush:(fun ~addr ~len ->
          Mv_vm.Machine.flush_icache machine ~addr ~len)
    in
    let s = H.of_parts program machine runtime in
    H.set s "m" 1;
    ignore (H.commit s);
    let stats = Core.Runtime.stats runtime in
    let m = H.measure ~samples:(samples ()) s ~loop_fn:"bench_loop" in
    (m.H.m_mean, stats.Core.Runtime.st_sites_inlined)
  in
  row "%-14s %16s %14s\n" "site padding" "cycles/call" "sites inlined";
  List.iter
    (fun pad ->
      let cycles, inlined = run pad in
      row "%-14d %16.2f %14d\n" pad cycles inlined;
      jrow (string_of_int pad)
        [ ("cycles", Json.Float cycles); ("sites_inlined", Json.Int inlined) ])
    [ 0; 4; 8; 10 ];
  row "=> once the variant body fits the padded site, the call disappears.\n"

(* ------------------------------------------------------------------ *)
(* A6: ablation — variant explosion (Section 7.1)                       *)
(* ------------------------------------------------------------------ *)

let ablation_explosion () =
  header
    "A6 / ablation: the cost of the assignment cross product\n\
     (Section 7.1: \"the big threat arising from a function-level approach\n\
    \ is the possibility of combinatorial explosion\")";
  let source n_switches =
    let buf = Buffer.create 512 in
    for i = 0 to n_switches - 1 do
      Buffer.add_string buf (Printf.sprintf "multiverse int s%d;\n" i)
    done;
    Buffer.add_string buf "int w;\nmultiverse void f() {\n";
    for i = 0 to n_switches - 1 do
      Buffer.add_string buf (Printf.sprintf "  if (s%d) { w = w + %d; }\n" i (1 lsl i))
    done;
    Buffer.add_string buf "}\nint d() { w = 0; f(); return w; }\n";
    Buffer.contents buf
  in
  row "%-10s %10s %14s %14s %12s\n" "switches" "variants" "variant text" "descriptors"
    "commit (ms)";
  List.iter
    (fun n ->
      let s = H.session1 (source n) in
      let stats = Core.Stats.of_program s.H.program in
      let t0 = Unix.gettimeofday () in
      ignore (H.commit s);
      let t1 = Unix.gettimeofday () in
      row "%-10d %10d %14d %14d %12.3f\n" n stats.Core.Stats.ps_variants
        stats.Core.Stats.ps_text_in_variants
        (Core.Stats.descriptor_overhead stats.Core.Stats.ps_sections)
        ((t1 -. t0) *. 1000.0);
      jrow (string_of_int n)
        [
          ("variants", Json.Int stats.Core.Stats.ps_variants);
          ("variant_text", Json.Int stats.Core.Stats.ps_text_in_variants);
          ( "descriptor_bytes",
            Json.Int (Core.Stats.descriptor_overhead stats.Core.Stats.ps_sections) );
          ("commit_ms", Json.Float ((t1 -. t0) *. 1000.0));
        ])
    [ 1; 2; 4; 6 ];
  row
    "=> 2^n variants: the developer-controlled mitigations are values(..)\n\
    \   (narrow domains) and bind(..) (partial specialization).\n";
  (* demonstrate the mitigation: bind one switch out of six *)
  let bound_src =
    let base = source 6 in
    let marker = "multiverse void f()" in
    let idx =
      let rec find i =
        if String.sub base i (String.length marker) = marker then i else find (i + 1)
      in
      find 0
    in
    String.sub base 0 idx
    ^ "multiverse bind(s0) void f()"
    ^ String.sub base
        (idx + String.length marker)
        (String.length base - idx - String.length marker)
  in
  let s = H.session1 bound_src in
  let stats = Core.Stats.of_program s.H.program in
  row "with bind(s0):    %6d variants, %6d B of variant text\n"
    stats.Core.Stats.ps_variants stats.Core.Stats.ps_text_in_variants

(* ------------------------------------------------------------------ *)
(* E14: observability overhead — tracing/profiling are pay-for-use      *)
(* ------------------------------------------------------------------ *)

let obs_overhead () =
  header
    "E14+E16 / observability: cost of the tracing, profiling, stack-profiling\n\
     and metrics hooks (all host-side observers charging zero simulated\n\
    \ cycles, so the cycle tables are unchanged whether or not they are\n\
    \ armed; only host wall-clock pays for the bookkeeping)";
  let run arm =
    let s = H.session1 (Spinlock.source Spinlock.Multiverse) in
    H.set s "config_smp" 0;
    ignore (H.commit s);
    arm s;
    let t0 = Unix.gettimeofday () in
    let m = H.measure ~samples:(samples ()) s ~loop_fn:"bench_loop" in
    let t1 = Unix.gettimeofday () in
    (m, (t1 -. t0) *. 1000.0)
  in
  let base, base_ms = run (fun _ -> ()) in
  let traced, traced_ms = run H.enable_tracing in
  let profiled, profiled_ms = run H.enable_profiling in
  let stacked, stacked_ms = run H.enable_stack_profiling in
  let metered, metered_ms = run (fun s -> H.enable_metrics s) in
  (* the flight recorder is always on — armed at session creation, before
     any enable_* call — so this arm measures a fresh session with only
     the flight sink live; its cycles must match the baseline exactly *)
  let flighted, flighted_ms =
    run (fun s -> assert (Mv_obs.Flight.capacity (H.flight s) > 0))
  in
  (* code-heat telemetry: block counters in the machine plus the residency
     sink in the event chain — like the other arms, host-side only, so the
     cycle column must match the baseline exactly *)
  let heated, heated_ms = run (fun s -> H.enable_heat s) in
  row "%-36s %12s %10s\n" "spinlock unicore" "cycles/call" "host ms";
  row "%-36s %12.2f %10.1f\n" "no sinks (baseline)" base.H.m_mean base_ms;
  row "%-36s %12.2f %10.1f\n" "tracing armed" traced.H.m_mean traced_ms;
  row "%-36s %12.2f %10.1f\n" "profiling armed" profiled.H.m_mean profiled_ms;
  row "%-36s %12.2f %10.1f\n" "stack profiling armed" stacked.H.m_mean stacked_ms;
  row "%-36s %12.2f %10.1f\n" "metrics registry armed" metered.H.m_mean metered_ms;
  row "%-36s %12.2f %10.1f\n" "flight recorder (always on)" flighted.H.m_mean
    flighted_ms;
  row "%-36s %12.2f %10.1f\n" "heat telemetry armed" heated.H.m_mean heated_ms;
  let delta a = (a -. base.H.m_mean) /. base.H.m_mean *. 100.0 in
  row
    "=> simulated-cycle delta: tracing %+.2f%%, profiling %+.2f%%, stack \
     profiling %+.2f%%, metrics %+.2f%%, flight %+.2f%%, heat %+.2f%%\n"
    (delta traced.H.m_mean) (delta profiled.H.m_mean) (delta stacked.H.m_mean)
    (delta metered.H.m_mean) (delta flighted.H.m_mean) (delta heated.H.m_mean);
  jmeas "spinlock-unicore"
    [
      ("baseline", base);
      ("tracing", traced);
      ("profiling", profiled);
      ("stackprof", stacked);
      ("metrics", metered);
      ("flight", flighted);
      ("heat", heated);
    ];
  jrow "host-ms"
    [
      ("baseline", Json.Float base_ms);
      ("tracing", Json.Float traced_ms);
      ("profiling", Json.Float profiled_ms);
      ("stackprof", Json.Float stacked_ms);
      ("metrics", Json.Float metered_ms);
      ("flight", Json.Float flighted_ms);
      ("heat", Json.Float heated_ms);
    ]

(* ------------------------------------------------------------------ *)
(* E17: stop_machine rendezvous cost vs hart count                     *)
(* ------------------------------------------------------------------ *)

let smp_rendezvous () =
  header
    "E17 / SMP: stop_machine rendezvous cost vs hart count\n\
     (contended spinlock workload, config_smp=1 committed; a whole-image\n\
    \ commit is injected mid-run, so every other running hart is IPI'd\n\
    \ and parks at its next irq-enabled boundary; latency is in summed\n\
    \ hart cycles per rendezvous.  Fully deterministic — the rows must\n\
    \ not drift between runs)";
  row "%-8s %10s %8s %8s %12s %14s %14s\n" "harts" "counter" "IPIs" "acks"
    "rendezvous" "latency/stop" "total cycles";
  List.iter
    (fun n_harts ->
      let iters = 25 in
      (* inject once every hart is ~40 steps deep in lock contention, so
         the acks actually wait on cli-protected critical sections *)
      let s, counter =
        Spinlock.run_contended ~n_harts ~seed:1 ~commit_at:(40 * n_harts)
          ~smp:true ~iters ()
      in
      let smp = s.H.smp in
      let sent = Mv_vm.Smp.ipis_sent smp in
      let acks = Mv_vm.Smp.ipi_acks smp in
      let count = Mv_vm.Smp.rendezvous_count smp in
      let cyc = Mv_vm.Smp.rendezvous_cycles smp in
      let latency = if count = 0 then 0.0 else cyc /. float_of_int count in
      let clock = Mv_vm.Smp.clock smp in
      row "%-8d %10d %8d %8d %12d %14.1f %14.1f\n" n_harts counter sent acks
        count latency clock;
      jrow (string_of_int n_harts)
        [
          ("n_harts", Json.Int n_harts);
          ("counter", Json.Int counter);
          ("ipis_sent", Json.Int sent);
          ("ipi_acks", Json.Int acks);
          ("rendezvous", Json.Int count);
          ("rendezvous_cycles", Json.Float cyc);
          ("latency_cycles", Json.Float latency);
          ("clock", Json.Float clock);
        ])
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* E18a: superblock interpreter vs the reference stepper               *)
(* ------------------------------------------------------------------ *)

let interp_superblock () =
  header
    "E18a / superblock interpreter: pre-decoded closure dispatch (finish) vs\n\
     the reference fetch/decode interpreter (finish_ref).  Simulated cycles,\n\
     instructions and results must be bit-identical; the wall-clock speedup\n\
     is host-side and informational (excluded from the regression gate)";
  (* not scaled down by --fast: the wall-clock comparison needs a window
     well above timer noise, and 300 reps is still ~100 ms per arm *)
  let reps = 300 in
  (* Fresh session per arm so each interpreter starts from cold decode
     state; the gated fields are the simulated counters, which must not
     depend on which stepper ran. *)
  let arm ~use_ref (src, switch, loop_fn, calls) =
    let s = H.session1 src in
    H.set s switch 0;
    ignore (H.commit s);
    let m = s.H.machine in
    (* one untimed warm-up call so neither arm pays decode inside the
       timed region (the warm-up is inside the perf window on purpose:
       the gated cycle counts cover warm-up + timed reps identically) *)
    let before = Mv_vm.Perf.snapshot m.Machine.perf in
    Machine.start_call m loop_fn [ calls ];
    ignore (if use_ref then Machine.finish_ref m else Machine.finish m);
    let t0 = Unix.gettimeofday () in
    let last = ref 0 in
    for _ = 1 to reps do
      Machine.start_call m loop_fn [ calls ];
      last := (if use_ref then Machine.finish_ref m else Machine.finish m)
    done;
    let t1 = Unix.gettimeofday () in
    let d = Mv_vm.Perf.diff before (Mv_vm.Perf.snapshot m.Machine.perf) in
    (!last, d.Mv_vm.Perf.s_cycles, d.Mv_vm.Perf.s_instructions, (t1 -. t0) *. 1000.0)
  in
  row "%-22s %14s %14s %10s %10s %8s\n" "workload" "cycles" "instructions"
    "sb ms" "ref ms" "speedup";
  List.iter
    (fun (name, spec) ->
      let r_sb, cy_sb, in_sb, ms_sb = arm ~use_ref:false spec in
      let r_ref, cy_ref, in_ref, ms_ref = arm ~use_ref:true spec in
      if r_sb <> r_ref || cy_sb <> cy_ref || in_sb <> in_ref then
        failwith
          (Printf.sprintf
             "interp-superblock: %s diverged (r %d/%d, cycles %.0f/%.0f, \
              insns %d/%d)"
             name r_sb r_ref cy_sb cy_ref in_sb in_ref);
      row "%-22s %14.0f %14d %10.1f %10.1f %7.2fx\n" name cy_sb in_sb ms_sb
        ms_ref (ms_ref /. ms_sb);
      jrow name
        [
          ("result", Json.Int r_sb);
          ("cycles", Json.Float cy_sb);
          ("instructions", Json.Int in_sb);
          ("ref_cycles", Json.Float cy_ref);
          ("ref_instructions", Json.Int in_ref);
        ];
      jrow "host-ms"
        [
          ("workload", Json.String name);
          ("superblock_ms", Json.Float ms_sb);
          ("reference_ms", Json.Float ms_ref);
          ("speedup", Json.Float (ms_ref /. ms_sb));
        ])
    [
      ("spinlock-unicore", (Spinlock.source Spinlock.Multiverse, "config_smp", "bench_loop", 2000));
      ("musl-malloc1", (Musl.source Musl.Multiversed, "threads_minus_1", "bench_malloc1", 400));
    ]

(* ------------------------------------------------------------------ *)
(* E18b: domain-parallel fuzzing throughput                            *)
(* ------------------------------------------------------------------ *)

let fuzz_throughput () =
  header
    "E18b / fuzz throughput: one campaign fanned out over 1/2/4 OCaml\n\
     domains.  Cases tested and divergences are deterministic (gated);\n\
     wall-clock and scaling are host-side and informational";
  let iters = if !fast then 40 else 120 in
  let campaign domains =
    let t0 = Unix.gettimeofday () in
    let s =
      Mv_fuzz.Driver.run_parallel ~cfg:Mv_fuzz.Gen.small_cfg ~domains ~seed:1
        ~iters ()
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    (s.Mv_fuzz.Driver.s_tested, List.length s.Mv_fuzz.Driver.s_reports, ms)
  in
  let base_ms = ref 0.0 in
  row "%-10s %8s %12s %10s %9s\n" "domains" "cases" "divergences" "host ms" "scaling";
  List.iter
    (fun domains ->
      let tested, divs, ms = campaign domains in
      if domains = 1 then base_ms := ms;
      row "%-10d %8d %12d %10.1f %8.2fx\n" domains tested divs ms (!base_ms /. ms);
      jrow (Printf.sprintf "domains-%d" domains)
        [ ("cases", Json.Int tested); ("divergences", Json.Int divs) ];
      jrow "host-ms"
        [
          ("domains", Json.Int domains);
          ("wall_ms", Json.Float ms);
          ("scaling", Json.Float (!base_ms /. ms));
        ])
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock suites (one Test.make per table)                 *)
(* ------------------------------------------------------------------ *)

let bechamel_suites () =
  header "Bechamel: host wall-clock of the runtime operations behind each table";
  let open Bechamel in
  let open Bechamel.Toolkit in
  (* pre-built sessions so the tests measure only the runtime operation *)
  let spin = H.session1 (Spinlock.source Spinlock.Multiverse) in
  let musl = H.session1 (Musl.source Musl.Multiversed) in
  let farm = H.session1 (Farm.source ~callers:117 ~pairs:5) in
  let toggle = ref 0 in
  let tests =
    [
      (* E1/E2: the spinlock tables depend on one commit per mode change *)
      Test.make ~name:"fig1-fig4.spinlock-commit"
        (Staged.stage (fun () ->
             toggle := 1 - !toggle;
             H.set spin "config_smp" !toggle;
             ignore (H.commit spin)));
      (* E5: musl's commit when the second thread appears/exits *)
      Test.make ~name:"fig5.musl-commit"
        (Staged.stage (fun () ->
             toggle := 1 - !toggle;
             H.set musl "threads_minus_1" !toggle;
             ignore (H.commit musl)));
      (* E4: the 1170-call-site commit of the patch-cost table *)
      Test.make ~name:"patch-cost.farm-commit-1170-sites"
        (Staged.stage (fun () ->
             toggle := 1 - !toggle;
             H.set farm "config_smp" !toggle;
             ignore (H.commit farm)));
      (* machine throughput underlying every cycle table *)
      Test.make ~name:"simulator.spinlock-100-iterations"
        (Staged.stage (fun () -> ignore (H.call spin "bench_loop" [ 100 ])));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> row "%-42s %12.0f ns/run\n" name est
          | Some _ | None -> row "%-42s %12s\n" name "n/a")
        results)
    tests

(* ------------------------------------------------------------------ *)
(* E22: lazy materialization — the variant cache                       *)
(* ------------------------------------------------------------------ *)

(* A function over [n] independent boolean switches: 2^n valuations,
   every subset specializing to a distinct body.  The shape the eager
   pipeline cannot pre-expand past the explosion cap and the lazy
   pipeline covers on demand. *)
let switch_farm_src n =
  let b = Buffer.create 1024 in
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "multiverse bool s%d;\n" i)
  done;
  Buffer.add_string b "int w;\nmultiverse void f() {\n";
  for i = 0 to n - 1 do
    Buffer.add_string b
      (Printf.sprintf "  if (s%d) { w = w + %d; w = w + %d; }\n" i (i + 1)
         (100 * (i + 1)))
  done;
  Buffer.add_string b "}\nint driver() { w = 0; f(); return w; }\n";
  Buffer.contents b

(* drand48-style LCG, masked to 46 bits so it stays a native OCaml int *)
let lazy_lcg seed =
  let state = ref (seed lor 1) in
  fun bound ->
    state := ((!state * 0x5DEECE66D) + 0xB) land 0x3FFFFFFFFFFF;
    (!state lsr 17) mod bound

let set_valuation s n bits =
  for i = 0 to n - 1 do
    H.set s (Printf.sprintf "s%d" i) ((bits lsr i) land 1)
  done

(* E22a: first-commit latency — specialize, optimize, assemble and link
   one unseen valuation into the variant-text region.  The wall-clock
   column is host time (skipped by the diff gate); the materialization
   counts and resident bytes are simulator-deterministic and gated. *)
let lazy_first_commit () =
  header
    "E22a / extension: lazy materialization — first-commit latency\n\
     (demand-driven specialize+optimize+assemble+link of one unseen\n\
    \ switch valuation; eager pre-expansion pays this for the whole\n\
    \ cross product at compile time)";
  row "%-10s %12s %16s %14s %12s\n" "[switches]" "commits" "mean ms/commit"
    "materialized" "bytes";
  List.iter
    (fun n ->
      let s = H.lazy_session1 (switch_farm_src n) in
      let commits = min (1 lsl n) 16 in
      let t0 = Unix.gettimeofday () in
      for bits = 0 to commits - 1 do
        set_valuation s n bits;
        ignore (H.commit s)
      done;
      let ms = (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int commits in
      let st = Core.Runtime.stats s.H.runtime in
      row "%-10d %12d %16.3f %14d %12d\n" n commits ms
        st.Core.Runtime.st_materialized st.Core.Runtime.st_variant_bytes;
      jrow (Printf.sprintf "%d-switches" n)
        [
          ("commits", Json.Int commits);
          ("commit_ms", Json.Float ms);
          ("materialized", Json.Int st.Core.Runtime.st_materialized);
          ("dedup_hits", Json.Int st.Core.Runtime.st_dedup_hits);
          ("variant_bytes", Json.Int st.Core.Runtime.st_variant_bytes);
        ])
    [ 2; 4; 6; 20 ]

(* E22b: cache-hit commit latency — re-committing an already-resident
   valuation touches the LRU and relinks the descriptor alias but
   assembles nothing. *)
let lazy_cache_hit () =
  header
    "E22b / extension: lazy materialization — cache-hit commit latency\n\
     (the structural-hash cache makes a re-commit of a resident\n\
    \ valuation patch-only: no specialization, no new bytes)";
  row "%-10s %12s %16s %14s %12s\n" "[switches]" "recommits" "mean ms/commit"
    "cache hits" "bytes";
  List.iter
    (fun n ->
      let s = H.lazy_session1 (switch_farm_src n) in
      set_valuation s n 1;
      ignore (H.commit s);
      let bytes0 = Core.Runtime.variant_bytes s.H.runtime in
      let recommits = 100 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to recommits do
        ignore (H.commit s)
      done;
      let ms = (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int recommits in
      let st = Core.Runtime.stats s.H.runtime in
      assert (Core.Runtime.variant_bytes s.H.runtime = bytes0);
      row "%-10d %12d %16.3f %14d %12d\n" n recommits ms
        st.Core.Runtime.st_cache_hits st.Core.Runtime.st_variant_bytes;
      jrow (Printf.sprintf "%d-switches" n)
        [
          ("recommits", Json.Int recommits);
          ("commit_ms", Json.Float ms);
          ("cache_hits", Json.Int st.Core.Runtime.st_cache_hits);
          ("materialized", Json.Int st.Core.Runtime.st_materialized);
          ("variant_bytes", Json.Int st.Core.Runtime.st_variant_bytes);
        ])
    [ 2; 6; 20 ]

(* E22c: variant-memory footprint — eager pre-expansion burns text for
   the whole cross product; the lazy cache holds only what ran, and the
   20-switch (~1M valuation) storm stays inside a 256 KiB budget. *)
let lazy_footprint () =
  header
    "E22c / extension: lazy materialization — variant-memory footprint\n\
     (eager: text for every valuation up front; lazy: resident bytes\n\
    \ track the committed working set under a byte budget)";
  row "%-10s %16s %16s %14s\n" "[switches]" "eager bytes" "lazy bytes"
    "lazy commits";
  List.iter
    (fun n ->
      let src = switch_farm_src n in
      let eager = H.session1 src in
      let eimg = eager.H.program.Core.Compiler.p_image in
      let eager_bytes =
        Hashtbl.fold
          (fun name size acc ->
            if String.contains name '.' then acc + size else acc)
          eimg.Mv_link.Image.symbol_sizes 0
      in
      let s = H.lazy_session1 src in
      let commits = min (1 lsl n) 8 in
      for bits = 0 to commits - 1 do
        set_valuation s n bits;
        ignore (H.commit s)
      done;
      let lazy_bytes = Core.Runtime.variant_bytes s.H.runtime in
      row "%-10d %16d %16d %14d\n" n eager_bytes lazy_bytes commits;
      jrow (Printf.sprintf "%d-switches" n)
        [
          ("eager_bytes", Json.Int eager_bytes);
          ("lazy_bytes", Json.Int lazy_bytes);
          ("commits", Json.Int commits);
        ])
    [ 2; 4; 6 ];
  (* the acceptance storm: 20 switches (~1M valuations), 1000 pinned-seed
     commits, 256 KiB budget — residency must never exceed the budget *)
  let n = 20 in
  let budget = 256 * 1024 in
  let s = H.lazy_session1 ~budget (switch_farm_src n) in
  let rand = lazy_lcg 0xC0FFEE in
  let peak = ref 0 in
  let ok = ref true in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 1000 do
    set_valuation s n (rand (1 lsl n));
    ignore (H.commit s);
    let b = Core.Runtime.variant_bytes s.H.runtime in
    if b > !peak then peak := b;
    if b > budget then ok := false
  done;
  let storm_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let st = Core.Runtime.stats s.H.runtime in
  row
    "\nstorm: 20 switches, 1000 commits, 256 KiB budget — peak %d B, %d\n\
     materialized, %d evictions, %d denials, budget %s (%.0f ms host)\n"
    !peak st.Core.Runtime.st_materialized st.Core.Runtime.st_evictions
    st.Core.Runtime.st_budget_denials
    (if !ok then "held" else "EXCEEDED")
    storm_ms;
  jrow "storm-20-switches"
    [
      ("commits", Json.Int 1000);
      ("budget_bytes", Json.Int budget);
      ("peak_bytes", Json.Int !peak);
      ("within_budget", Json.Bool !ok);
      ("materialized", Json.Int st.Core.Runtime.st_materialized);
      ("dedup_hits", Json.Int st.Core.Runtime.st_dedup_hits);
      ("cache_hits", Json.Int st.Core.Runtime.st_cache_hits);
      ("evictions", Json.Int st.Core.Runtime.st_evictions);
      ("budget_denials", Json.Int st.Core.Runtime.st_budget_denials);
      ("commit_ms", Json.Float storm_ms);
    ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1", fig1);
    ("fig4-spinlock", fig4_spinlock);
    ("fig4-pvops", fig4_pvops);
    ("patch-cost", patch_cost);
    ("patch-scaling", patch_scaling);
    ("fig5-musl", fig5_musl);
    ("musl-scalars", musl_scalars);
    ("grep", grep);
    ("cpython", cpython);
    ("descriptor-sizes", descriptor_sizes);
    ("api", api);
    ("fig23-worked-example", worked_example);
    ("tracing", tracing);
    ("safe-commit", safe_commit_bench);
    ("osr-drain", osr_drain);
    ("ablation-jmp", ablation_jmp);
    ("ablation-btb", ablation_btb);
    ("ablation-inline", ablation_inline);
    ("ablation-body-patching", ablation_body_patching);
    ("ablation-explosion", ablation_explosion);
    ("ablation-padded-sites", ablation_padded_sites);
    ("obs-overhead", obs_overhead);
    ("smp-rendezvous", smp_rendezvous);
    ("interp-superblock", interp_superblock);
    ("fuzz-throughput", fuzz_throughput);
    ("lazy-first-commit", lazy_first_commit);
    ("lazy-cache-hit", lazy_cache_hit);
    ("lazy-footprint", lazy_footprint);
  ]

let () =
  let only = ref [] in
  let list_only = ref false in
  let no_bechamel = ref false in
  let args =
    [
      ("--only", Arg.String (fun s -> only := s :: !only), "ID run a single experiment");
      ("--list", Arg.Set list_only, " list experiment ids");
      ("--fast", Arg.Set fast, " fewer samples");
      ("--no-bechamel", Arg.Set no_bechamel, " skip the Bechamel wall-clock suites");
      ( "--json",
        Arg.String (fun p -> json_path := Some p),
        "FILE write per-experiment result rows as JSON (mv-bench-rows/1)" );
      ( "--baseline",
        Arg.String (fun p -> baseline_path := Some p),
        "FILE print a structural diff of this run's rows against a committed \
         mv-bench-rows/1 document" );
    ]
  in
  Arg.parse args (fun _ -> ()) "multiverse benchmark harness";
  if !list_only then
    List.iter (fun (id, _) -> print_endline id) (experiments @ [ ("bechamel", ignore) ])
  else begin
    let selected =
      if !only = [] then experiments
      else List.filter (fun (id, _) -> List.mem id !only) experiments
    in
    List.iter
      (fun (id, f) ->
        current_exp := id;
        f ())
      selected;
    if (!only = [] || List.mem "bechamel" !only) && not !no_bechamel then bechamel_suites ();
    (match !json_path with Some path -> write_json_tables path | None -> ());
    (match !baseline_path with Some path -> print_baseline_diff path | None -> ());
    print_newline ()
  end
