(* Observability demo: trace a commit/run/revert cycle and write the
   events as a Chrome trace plus a metrics snapshot.

     dune exec examples/trace_obs.exe
     # then load /tmp/multiverse_trace.json in about:tracing or Perfetto

   The session arms the structured-event recorder and the sampling
   profiler, drives the spinlock workload through a reconfiguration, and
   exports everything the observability layer produces: the event log,
   the Chrome trace_event JSON, the hot-function table, and the unified
   metrics snapshot. *)

module H = Mv_workloads.Harness
module Trace = Mv_obs.Trace

let source =
  {|
  multiverse int config_smp;
  int word;

  multiverse void spin_lock() {
    if (config_smp) { word = word + 1; }
  }

  void bench_loop(int n) {
    for (int i = 0; i < n; i = i + 1) { spin_lock(); }
  }
|}

let trace_path = "/tmp/multiverse_trace.json"
let metrics_path = "/tmp/multiverse_metrics.json"

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let () =
  Format.printf "--- multiverse observability: tracing a reconfiguration ---@.";
  let s = H.session1 source in
  H.enable_tracing s;
  H.enable_profiling s;

  (* boot single-core, run, then bring up a second core and re-commit *)
  H.set s "config_smp" 0;
  ignore (H.commit s);
  ignore (H.call s "bench_loop" [ 500 ]);
  H.set s "config_smp" 1;
  ignore (H.commit s);
  ignore (H.call s "bench_loop" [ 500 ]);
  ignore (H.revert s);

  (* 1. the raw event log, one line per event *)
  Format.printf "@.recorded %d event(s):@." (List.length (H.trace_events s));
  List.iter (fun st -> Format.printf "  %a@." Trace.pp st) (H.trace_events s);

  (* 2. the profiler's view of where the cycles went *)
  (match s.H.profile with
  | Some p -> Format.printf "@.%a@." (fun fmt -> Mv_obs.Profile.pp fmt) p
  | None -> ());

  (* 3. the exports *)
  write_file trace_path (H.trace_dump s);
  Format.printf "@.chrome trace   -> %s (load in about:tracing / Perfetto)@." trace_path;
  write_file metrics_path (Mv_obs.Json.to_string_pretty (H.metrics_json s));
  Format.printf "metrics (JSON) -> %s@." metrics_path;
  Format.printf "@.done.@."
