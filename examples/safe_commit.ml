(* Safe commit: stack-quiescence detection and deferred patching.

     dune exec examples/safe_commit.exe

   The paper's runtime library performs no synchronization — "the caller
   guarantees a patchable state" (Section 2).  This extension closes the
   gap where the execution environment can prove quiescence: the machine
   reports every code address with a live activation (pc + a conservative
   stack scan), commit_safe defers patches whose target bytes are live,
   and the deferred set drains transactionally at the next quiescent
   safepoint (polled after every ret). *)

module H = Mv_workloads.Harness
module Runtime = Core.Runtime
module Machine = Mv_vm.Machine
module Image = Mv_link.Image

let src =
  {|
  multiverse bool fastpath;
  int work;
  multiverse void stage() {
    if (fastpath) { work = work + 100; } else { work = work + 1; }
  }
  void bookkeeping() { work = work + 1; }
  int job() { work = 0; stage(); bookkeeping(); bookkeeping(); stage(); return work; }
|}

let pending s =
  match Runtime.pending s.H.runtime with
  | [] -> "(none)"
  | names -> String.concat ", " names

let () =
  Format.printf "--- safe commit: defer while live, apply at quiescence ---@.";
  let s = H.session1 src in
  H.enable_safe_commit s;
  H.set s "fastpath" 1;

  (* park the machine mid-call, inside the function we want to patch *)
  let stage_addr = Image.symbol s.H.program.Core.Compiler.p_image "stage" in
  Machine.start_call s.H.machine "job" [];
  while s.H.machine.Machine.pc <> stage_addr do
    ignore (Machine.step s.H.machine)
  done;
  Format.printf "@.machine parked inside stage() (pc=0x%x, activation live)@."
    s.H.machine.Machine.pc;

  let bound = H.commit_safe s in
  Format.printf "multiverse_commit_safe(): %d bound now, pending: %s@." bound
    (pending s);

  (* the binding decision is journaled at commit time: flipping the switch
     now changes what the *generic* body computes, not what gets applied *)
  H.set s "fastpath" 0;

  (* the run continues; the journaled set drains at the first quiescent
     safepoint after stage() returns, before its second call *)
  let w = Machine.finish s.H.machine in
  Format.printf
    "job() = %d  (first call generic +1, second call fastpath variant +100)@." w;
  Format.printf "pending after run: %s@." (pending s);

  let st = Runtime.stats s.H.runtime in
  Format.printf
    "counters: deferred=%d applied=%d rolled_back=%d superseded=%d polls=%d@."
    st.Runtime.st_safe_deferred st.Runtime.st_safe_applied
    st.Runtime.st_safe_rolled_back st.Runtime.st_safe_superseded
    st.Runtime.st_safepoint_polls;

  Format.printf "@.next run executes the committed image end to end:@.";
  Format.printf "job() = %d  (both calls hit the variant)@." (H.call s "job" []);

  (* the Deny policy refuses instead of journaling *)
  Format.printf "@.--- Deny policy ---@.";
  let s2 = H.session1 src in
  H.enable_safe_commit s2;
  H.set s2 "fastpath" 1;
  Machine.start_call s2.H.machine "job" [];
  let stage2 = Image.symbol s2.H.program.Core.Compiler.p_image "stage" in
  while s2.H.machine.Machine.pc <> stage2 do
    ignore (Machine.step s2.H.machine)
  done;
  let bound = H.commit_safe ~policy:Runtime.Deny s2 in
  Format.printf "commit_safe ~policy:Deny while live: %d bound, pending: %s@."
    bound (pending s2);
  H.set s2 "fastpath" 0;
  Format.printf "job() = %d  (never patched: generic +1 both calls)@."
    (Machine.finish s2.H.machine);
  Format.printf "done.@."
